package turnspmc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New[int](2)
	for i := 0; i < 1000; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 1000; i++ {
		if v, ok := q.Dequeue(0); !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("queue should be empty")
	}
}

func TestSingleProducerMultiConsumer(t *testing.T) {
	const consumers, items = 6, 20000
	q := New[int](consumers)
	var wg sync.WaitGroup
	var consumed atomic.Int64
	var dup atomic.Int64
	seen := make([]atomic.Bool, items)

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for consumed.Load() < items {
				v, ok := q.Dequeue(c)
				if !ok {
					runtime.Gosched()
					continue
				}
				if seen[v].Swap(true) {
					dup.Add(1)
				}
				consumed.Add(1)
			}
		}(c)
	}
	for i := 0; i < items; i++ {
		q.Enqueue(i)
	}
	wg.Wait()
	if dup.Load() != 0 {
		t.Fatalf("%d duplicated items", dup.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("item %d lost", i)
		}
	}
}

// TestBatchEnqueueMultiConsumer publishes chains while the full consensus
// dequeue runs on several consumers: exactly-once, no losses.
func TestBatchEnqueueMultiConsumer(t *testing.T) {
	const consumers, items, batch = 6, 20000, 32
	q := New[int](consumers)
	var wg sync.WaitGroup
	var consumed atomic.Int64
	var dup atomic.Int64
	seen := make([]atomic.Bool, items)

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for consumed.Load() < items {
				v, ok := q.Dequeue(c)
				if !ok {
					runtime.Gosched()
					continue
				}
				if seen[v].Swap(true) {
					dup.Add(1)
				}
				consumed.Add(1)
			}
		}(c)
	}
	chunk := make([]int, 0, batch)
	for i := 0; i < items; {
		chunk = chunk[:0]
		for len(chunk) < batch && i < items {
			chunk = append(chunk, i)
			i++
		}
		q.EnqueueBatch(chunk)
	}
	wg.Wait()
	if dup.Load() != 0 {
		t.Fatalf("%d duplicated items", dup.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("item %d lost", i)
		}
	}
}

// TestBatchEnqueueOrder checks a mixed single/batch producer stream comes
// out in order through one consumer, including empty and size-1 batches.
func TestBatchEnqueueOrder(t *testing.T) {
	q := New[int](2)
	next := 0
	for b := 0; b < 100; b++ {
		items := make([]int, b%5)
		for i := range items {
			items[i] = next
			next++
		}
		q.EnqueueBatch(items)
		q.Enqueue(next)
		next++
	}
	for expect := 0; expect < next; expect++ {
		if v, ok := q.Dequeue(0); !ok || v != expect {
			t.Fatalf("got (%d,%v), want (%d,true)", v, ok, expect)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("queue should be empty")
	}
}

func TestGlobalOrderObservedByOneConsumer(t *testing.T) {
	// With a single consumer active, the full producer order must come
	// out intact even though the dequeue side runs the full consensus.
	q := New[int](3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			q.Enqueue(i)
		}
	}()
	expect := 0
	for expect < 5000 {
		if v, ok := q.Dequeue(1); ok {
			if v != expect {
				t.Errorf("got %d, want %d", v, expect)
				return
			}
			expect++
		} else {
			runtime.Gosched()
		}
	}
	<-done
}

func TestEmptyAfterDrain(t *testing.T) {
	q := New[int](2)
	q.Enqueue(1)
	if _, ok := q.Dequeue(0); !ok {
		t.Fatal("dequeue failed")
	}
	for i := 0; i < 10; i++ {
		if v, ok := q.Dequeue(i % 2); ok {
			t.Fatalf("empty dequeue returned %v", v)
		}
	}
}
