package turnspmc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSequentialFIFO(t *testing.T) {
	q := New[int](2)
	for i := 0; i < 1000; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 1000; i++ {
		if v, ok := q.Dequeue(0); !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("queue should be empty")
	}
}

func TestSingleProducerMultiConsumer(t *testing.T) {
	const consumers, items = 6, 20000
	q := New[int](consumers)
	var wg sync.WaitGroup
	var consumed atomic.Int64
	var dup atomic.Int64
	seen := make([]atomic.Bool, items)

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for consumed.Load() < items {
				v, ok := q.Dequeue(c)
				if !ok {
					runtime.Gosched()
					continue
				}
				if seen[v].Swap(true) {
					dup.Add(1)
				}
				consumed.Add(1)
			}
		}(c)
	}
	for i := 0; i < items; i++ {
		q.Enqueue(i)
	}
	wg.Wait()
	if dup.Load() != 0 {
		t.Fatalf("%d duplicated items", dup.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("item %d lost", i)
		}
	}
}

func TestGlobalOrderObservedByOneConsumer(t *testing.T) {
	// With a single consumer active, the full producer order must come
	// out intact even though the dequeue side runs the full consensus.
	q := New[int](3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			q.Enqueue(i)
		}
	}()
	expect := 0
	for expect < 5000 {
		if v, ok := q.Dequeue(1); ok {
			if v != expect {
				t.Errorf("got %d, want %d", v, expect)
				return
			}
			expect++
		} else {
			runtime.Gosched()
		}
	}
	<-done
}

func TestEmptyAfterDrain(t *testing.T) {
	q := New[int](2)
	q.Enqueue(1)
	if _, ok := q.Dequeue(0); !ok {
		t.Fatal("dequeue failed")
	}
	for i := 0; i < 10; i++ {
		if v, ok := q.Dequeue(i % 2); ok {
			t.Fatalf("empty dequeue returned %v", v)
		}
	}
}
