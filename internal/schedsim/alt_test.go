package schedsim

import (
	"testing"

	"turnqueue/internal/lincheck"
	"turnqueue/internal/sched"
)

// TestAltRandomSchedules model-checks the §2.3 single-array alternative:
// the paper rejects it for hazard-pointer cost, not correctness, and the
// explorer should confirm the rollback protocol is sound.
func TestAltRandomSchedules(t *testing.T) {
	seeds := 3000
	if testing.Short() {
		seeds = 300
	}
	for si, sc := range scenarios() {
		for seed := 0; seed < seeds; seed++ {
			for ci, ch := range []sched.Chooser{
				sched.NewRandomChooser(uint64(seed)),
				sched.NewBurstChooser(uint64(seed), 40),
			} {
				q := NewAlt(len(sc))
				h := runScenarioOn(altAdapter{q}, sc, ch)
				if err := lincheck.Check(h); err != nil {
					t.Fatalf("scenario %d seed %d chooser %d: %v", si, seed, ci, err)
				}
			}
		}
	}
}

// TestAltAdversarialSchedules runs the hog/starve schedules.
func TestAltAdversarialSchedules(t *testing.T) {
	for si, sc := range scenarios() {
		for pref := 0; pref < len(sc); pref++ {
			for _, invert := range []bool{false, true} {
				q := NewAlt(len(sc))
				h := runScenarioOn(altAdapter{q}, sc, sched.StepFirstChooser{Preferred: pref, Invert: invert})
				if err := lincheck.Check(h); err != nil {
					t.Fatalf("scenario %d preferred=%d invert=%v: %v", si, pref, invert, err)
				}
			}
		}
	}
}

// altAdapter bridges AltQueue to the modelQueue interface.
type altAdapter struct{ q *AltQueue }

func (a altAdapter) Enqueue(y Stepper, tid int, item int64) { a.q.Enqueue(y, tid, item) }
func (a altAdapter) Dequeue(y Stepper, tid int) (int64, bool) {
	return a.q.Dequeue(y, tid)
}
