// Package schedsim is a step-instrumented model of the Turn queue's
// consensus algorithm (Algorithms 1-4 minus memory reclamation), written
// against internal/sched's cooperative scheduler: every shared-memory
// access is one scheduler step, so seeded random schedules explore the
// algorithm's interleavings at single-access granularity and every
// resulting history can be fed to the exact linearizability checker.
//
// Because virtual threads run one at a time, shared state needs no
// atomics here — a CAS is modeled as one compare-and-write step. The
// model must mirror internal/core's control flow (sans hazard pointers
// and pooling, which are orthogonal to linearizability); when one
// changes, change the other.
package schedsim

// Stepper is the scheduling hook: *sched.VThread implements it, and the
// mutants in mutants.go share it.
type Stepper interface{ Step() }

// IdxNone marks an unassigned node.
const IdxNone = -1

// Node mirrors the paper's Algorithm 1.
type Node struct {
	item   int64
	enqTid int
	deqTid int
	next   *Node
}

// Queue is the model. All fields are plain: the scheduler serializes
// access.
type Queue struct {
	maxThreads int
	head, tail *Node
	enqueuers  []*Node
	deqself    []*Node
	deqhelp    []*Node
}

// New creates a model queue for maxThreads virtual threads.
func New(maxThreads int) *Queue {
	sentinel := &Node{enqTid: 0, deqTid: 0}
	q := &Queue{
		maxThreads: maxThreads,
		head:       sentinel,
		tail:       sentinel,
		enqueuers:  make([]*Node, maxThreads),
		deqself:    make([]*Node, maxThreads),
		deqhelp:    make([]*Node, maxThreads),
	}
	for i := 0; i < maxThreads; i++ {
		q.deqself[i] = &Node{deqTid: IdxNone}
		q.deqhelp[i] = &Node{deqTid: IdxNone}
	}
	return q
}

// Enqueue is Algorithm 2 with one scheduler step per shared access.
func (q *Queue) Enqueue(y Stepper, tid int, item int64) {
	myNode := &Node{item: item, enqTid: tid, deqTid: IdxNone}
	y.Step()
	q.enqueuers[tid] = myNode
	for {
		y.Step()
		if q.enqueuers[tid] == nil {
			return
		}
		y.Step()
		ltail := q.tail
		y.Step()
		if ltail != q.tail {
			continue
		}
		y.Step()
		if q.enqueuers[ltail.enqTid] == ltail {
			y.Step()
			if q.enqueuers[ltail.enqTid] == ltail { // CAS(ltail -> nil)
				q.enqueuers[ltail.enqTid] = nil
			}
		}
		for j := 1; j < q.maxThreads+1; j++ {
			y.Step()
			nodeToHelp := q.enqueuers[(j+ltail.enqTid)%q.maxThreads]
			if nodeToHelp == nil {
				continue
			}
			y.Step()
			if ltail.next == nil { // CAS(nil -> nodeToHelp)
				ltail.next = nodeToHelp
			}
			break
		}
		y.Step()
		lnext := ltail.next
		if lnext != nil {
			y.Step()
			if q.tail == ltail { // CAS(ltail -> lnext)
				q.tail = lnext
			}
		}
	}
}

// Dequeue is Algorithm 3/4 with one scheduler step per shared access.
func (q *Queue) Dequeue(y Stepper, tid int) (int64, bool) {
	y.Step()
	prReq := q.deqself[tid]
	y.Step()
	myReq := q.deqhelp[tid]
	y.Step()
	q.deqself[tid] = myReq
	for {
		y.Step()
		if q.deqhelp[tid] != myReq {
			break
		}
		y.Step()
		lhead := q.head
		y.Step()
		if lhead != q.head {
			continue
		}
		y.Step()
		if lhead == q.tail {
			y.Step()
			q.deqself[tid] = prReq // rollback
			q.giveUp(y, myReq, tid)
			y.Step()
			if q.deqhelp[tid] != myReq {
				y.Step()
				q.deqself[tid] = myReq
				break
			}
			return 0, false
		}
		y.Step()
		lnext := lhead.next
		y.Step()
		if lhead != q.head {
			continue
		}
		if q.searchNext(y, lhead, lnext) != IdxNone {
			q.casDeqAndHead(y, lhead, lnext, tid)
		}
	}
	y.Step()
	myNode := q.deqhelp[tid]
	y.Step()
	lhead := q.head
	y.Step()
	if lhead == q.head {
		y.Step()
		if myNode == lhead.next {
			y.Step()
			if q.head == lhead { // CAS(lhead -> myNode)
				q.head = myNode
			}
		}
	}
	_ = prReq // reclamation is out of model scope
	return myNode.item, true
}

func (q *Queue) searchNext(y Stepper, lhead, lnext *Node) int {
	y.Step()
	turn := lhead.deqTid
	for idx := turn + 1; idx < turn+q.maxThreads+1; idx++ {
		idDeq := idx % q.maxThreads
		y.Step()
		self := q.deqself[idDeq]
		y.Step()
		help := q.deqhelp[idDeq]
		if self != help {
			continue
		}
		y.Step()
		if lnext.deqTid == IdxNone {
			y.Step()
			if lnext.deqTid == IdxNone { // CAS(IdxNone -> idDeq)
				lnext.deqTid = idDeq
			}
		}
		break
	}
	y.Step()
	return lnext.deqTid
}

func (q *Queue) casDeqAndHead(y Stepper, lhead, lnext *Node, tid int) {
	y.Step()
	ldeqTid := lnext.deqTid
	if ldeqTid == tid {
		y.Step()
		q.deqhelp[ldeqTid] = lnext
	} else {
		y.Step()
		ldeqhelp := q.deqhelp[ldeqTid]
		y.Step()
		if ldeqhelp != lnext && lhead == q.head {
			y.Step()
			if q.deqhelp[ldeqTid] == ldeqhelp { // CAS(ldeqhelp -> lnext)
				q.deqhelp[ldeqTid] = lnext
			}
		}
	}
	y.Step()
	if q.head == lhead { // CAS(lhead -> lnext)
		q.head = lnext
	}
}

func (q *Queue) giveUp(y Stepper, myReq *Node, tid int) {
	y.Step()
	lhead := q.head
	y.Step()
	if q.deqhelp[tid] != myReq {
		return
	}
	y.Step()
	if lhead == q.tail {
		return
	}
	y.Step()
	if lhead != q.head {
		return
	}
	y.Step()
	lnext := lhead.next
	y.Step()
	if lhead != q.head {
		return
	}
	if q.searchNext(y, lhead, lnext) == IdxNone {
		y.Step()
		if lnext.deqTid == IdxNone { // CAS(IdxNone -> tid)
			lnext.deqTid = tid
		}
	}
	q.casDeqAndHead(y, lhead, lnext, tid)
}
