package schedsim

import (
	"fmt"
	"testing"

	"turnqueue/internal/lincheck"
	"turnqueue/internal/sched"
)

// scenario describes one virtual thread's operation script: positive
// values enqueue that value, zero dequeues.
type scenario [][]int64

// runScenario executes the scenario under the chooser and returns the
// recorded history. The logical clock is a plain counter: bodies touch it
// only between scheduler steps, so increments are already serialized.
func runScenario(sc scenario, chooser sched.Chooser) []lincheck.Op {
	q := New(len(sc))
	var clock int64
	tick := func() int64 { clock++; return clock }
	histories := make([][]lincheck.Op, len(sc))

	bodies := make([]func(*sched.VThread), len(sc))
	for i, script := range sc {
		i, script := i, script
		bodies[i] = func(y *sched.VThread) {
			for _, v := range script {
				if v > 0 {
					start := tick()
					q.Enqueue(y, i, v)
					histories[i] = append(histories[i], lincheck.Op{
						Kind: lincheck.Enq, Value: v, Start: start, End: tick(),
					})
				} else {
					start := tick()
					got, ok := q.Dequeue(y, i)
					histories[i] = append(histories[i], lincheck.Op{
						Kind: lincheck.Deq, Value: got, Ok: ok, Start: start, End: tick(),
					})
				}
			}
		}
	}
	sched.Run(chooser, bodies...)
	var all []lincheck.Op
	for _, h := range histories {
		all = append(all, h...)
	}
	return all
}

// scenarios returns the small configurations explored per seed. Values
// are globally unique so the exact checker applies.
func scenarios() []scenario {
	return []scenario{
		// 2 threads, enq+deq pairs
		{{1, 0, 2, 0}, {11, 0, 12, 0}},
		// producer vs consumer (empty races drive giveUp)
		{{1, 2, 3}, {0, 0, 0, 0}},
		// 3 threads mixed
		{{1, 0}, {11, 0}, {0, 21, 0}},
		// all-dequeuers on an empty queue plus one late producer
		{{0, 0}, {0, 0}, {1, 2}},
		// helping storm: three enqueuers then three dequeuers
		{{1, 2, 0}, {11, 0, 0}, {21, 0, 22}},
		// four threads: two pure producers, two pure consumers that
		// overshoot (more dequeues than items exist)
		{{1, 2}, {11, 12}, {0, 0, 0}, {0, 0, 0}},
		// four threads all mixed, slot-asymmetric scripts
		{{1, 0, 2}, {0, 11}, {21, 0, 0}, {0, 31, 0}},
	}
}

// TestRandomSchedules is the headline model check: thousands of seeded
// random single-access-granularity schedules, each history validated by
// the exact linearizability checker. A failure prints the seed and
// scenario for replay.
func TestRandomSchedules(t *testing.T) {
	seeds := 3000
	if testing.Short() {
		seeds = 300
	}
	for si, sc := range scenarios() {
		for seed := 0; seed < seeds; seed++ {
			for ci, ch := range []sched.Chooser{
				sched.NewRandomChooser(uint64(seed)),
				sched.NewBurstChooser(uint64(seed), 40),
			} {
				h := runScenario(sc, ch)
				if err := lincheck.Check(h); err != nil {
					t.Fatalf("scenario %d seed %d chooser %d: %v", si, seed, ci, err)
				}
			}
		}
	}
}

// TestAdversarialSchedules drives targeted schedules: each thread in turn
// is given absolute priority, and each in turn is starved until the
// others finish — the schedules where helping must carry a parked or
// hogging thread.
func TestAdversarialSchedules(t *testing.T) {
	for si, sc := range scenarios() {
		for pref := 0; pref < len(sc); pref++ {
			for _, invert := range []bool{false, true} {
				h := runScenario(sc, sched.StepFirstChooser{Preferred: pref, Invert: invert})
				if err := lincheck.Check(h); err != nil {
					t.Fatalf("scenario %d preferred=%d invert=%v: %v", si, pref, invert, err)
				}
			}
		}
	}
}

// TestReplayDeterminism: the same seed yields the same trace and history.
func TestReplayDeterminism(t *testing.T) {
	sc := scenarios()[2]
	h1 := runScenario(sc, sched.NewRandomChooser(42))
	h2 := runScenario(sc, sched.NewRandomChooser(42))
	if fmt.Sprint(h1) != fmt.Sprint(h2) {
		t.Fatal("same seed produced different histories")
	}
	// And a recorded trace replays to the same history.
	var trace []int
	q := New(2)
	_ = q
	trace = traceOf(sc, 42)
	h3 := runScenario(sc, sched.NewReplayChooser(trace))
	if fmt.Sprint(h1) != fmt.Sprint(h3) {
		t.Fatal("trace replay diverged from the seeded run")
	}
}

func traceOf(sc scenario, seed uint64) []int {
	q := New(len(sc))
	bodies := make([]func(*sched.VThread), len(sc))
	for i, script := range sc {
		i, script := i, script
		bodies[i] = func(y *sched.VThread) {
			for _, v := range script {
				if v > 0 {
					q.Enqueue(y, i, v)
				} else {
					q.Dequeue(y, i)
				}
			}
		}
	}
	return sched.Run(sched.NewRandomChooser(seed), bodies...)
}

// TestModelSequential sanity-checks the model itself single-threaded.
func TestModelSequential(t *testing.T) {
	h := runScenario(scenario{{1, 2, 0, 0, 0, 3, 0}}, sched.StepFirstChooser{Preferred: 0})
	if err := lincheck.Check(h); err != nil {
		t.Fatal(err)
	}
	// Explicit FIFO check on the single-threaded history.
	var got []int64
	for _, op := range h {
		if op.Kind == lincheck.Deq && op.Ok {
			got = append(got, op.Value)
		}
	}
	want := []int64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("dequeued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeued %v, want %v", got, want)
		}
	}
}
