package schedsim

// Step-instrumented model of the Kogan-Petrank queue (mirroring
// internal/kpq's control flow, minus reclamation), so the schedule
// explorer covers the paper's main wait-free comparator too. The model
// includes the port-specific detail that internal/kpq documents: the
// helper's final head swing must be attempted even when the descriptor
// completion check fails, or an owner can return while the head still
// sits on its bound node and double-consume it. KPMutGuardedHeadSwing
// reintroduces the guarded version so the explorer can demonstrate the
// failure.

// kpNode is the KP queue node.
type kpNode struct {
	value  int64
	enqTid int
	deqTid int
	next   *kpNode
}

// kpDesc is the operation descriptor (immutable once stored).
type kpDesc struct {
	phase   int64
	pending bool
	enqueue bool
	node    *kpNode
}

// KPMutation selects a seeded bug in the KP model.
type KPMutation int

// KP model mutations.
const (
	// KPMutNone is the faithful model.
	KPMutNone KPMutation = iota
	// KPMutGuardedHeadSwing guards helpFinishDeq's head swing behind the
	// descriptor validation, as a naive reading of the original listing
	// suggests — the bug internal/kpq's helpFinishDeq comment explains.
	KPMutGuardedHeadSwing
)

// KPQueue is the model queue.
type KPQueue struct {
	maxThreads int
	head, tail *kpNode
	state      []*kpDesc
	m          KPMutation
}

// NewKP creates a model KP queue.
func NewKP(maxThreads int, m KPMutation) *KPQueue {
	sentinel := &kpNode{enqTid: -1, deqTid: IdxNone}
	q := &KPQueue{
		maxThreads: maxThreads,
		head:       sentinel,
		tail:       sentinel,
		state:      make([]*kpDesc, maxThreads),
		m:          m,
	}
	for i := range q.state {
		q.state[i] = &kpDesc{phase: -1}
	}
	return q
}

func (q *KPQueue) maxPhase(y Stepper) int64 {
	maxp := int64(-1)
	for i := range q.state {
		y.Step()
		if p := q.state[i].phase; p > maxp {
			maxp = p
		}
	}
	return maxp
}

func (q *KPQueue) isStillPending(y Stepper, tid int, phase int64) bool {
	y.Step()
	d := q.state[tid]
	return d.pending && d.phase <= phase
}

// Enqueue is KP enq().
func (q *KPQueue) Enqueue(y Stepper, tid int, v int64) {
	phase := q.maxPhase(y) + 1
	nd := &kpNode{value: v, enqTid: tid, deqTid: IdxNone}
	y.Step()
	q.state[tid] = &kpDesc{phase: phase, pending: true, enqueue: true, node: nd}
	q.help(y, phase)
	q.helpFinishEnq(y)
}

// Dequeue is KP deq(), with the §3.2 restructuring: the completed
// descriptor carries the value node.
func (q *KPQueue) Dequeue(y Stepper, tid int) (int64, bool) {
	phase := q.maxPhase(y) + 1
	y.Step()
	q.state[tid] = &kpDesc{phase: phase, pending: true, enqueue: false}
	q.help(y, phase)
	q.helpFinishDeq(y)
	y.Step()
	nd := q.state[tid].node
	if nd == nil {
		return 0, false
	}
	return nd.value, true
}

func (q *KPQueue) help(y Stepper, phase int64) {
	for i := 0; i < q.maxThreads; i++ {
		y.Step()
		d := q.state[i]
		if !d.pending || d.phase > phase {
			continue
		}
		if d.enqueue {
			q.helpEnq(y, i, phase)
		} else {
			q.helpDeq(y, i, phase)
		}
	}
}

func (q *KPQueue) helpEnq(y Stepper, i int, phase int64) {
	for q.isStillPending(y, i, phase) {
		y.Step()
		last := q.tail
		y.Step()
		next := last.next
		y.Step()
		if last != q.tail {
			continue
		}
		if next != nil {
			q.helpFinishEnq(y)
			continue
		}
		if !q.isStillPending(y, i, phase) {
			return
		}
		y.Step()
		d := q.state[i]
		if !d.pending || !d.enqueue || d.node == nil {
			continue
		}
		y.Step()
		if last.next == nil { // CAS(nil -> d.node)
			last.next = d.node
			q.helpFinishEnq(y)
			return
		}
	}
}

func (q *KPQueue) helpFinishEnq(y Stepper) {
	y.Step()
	last := q.tail
	y.Step()
	next := last.next
	y.Step()
	if last != q.tail || next == nil {
		return
	}
	i := next.enqTid
	if i >= 0 {
		y.Step()
		cur := q.state[i]
		y.Step()
		if q.state[i] == cur && last == q.tail && cur.node == next && cur.pending {
			y.Step()
			if q.state[i] == cur { // CAS(cur -> completed)
				q.state[i] = &kpDesc{phase: cur.phase, pending: false, enqueue: true, node: next}
			}
		}
	}
	y.Step()
	if q.tail == last { // CAS(last -> next)
		q.tail = next
	}
}

func (q *KPQueue) helpDeq(y Stepper, i int, phase int64) {
	for q.isStillPending(y, i, phase) {
		y.Step()
		first := q.head
		y.Step()
		last := q.tail
		y.Step()
		next := first.next
		y.Step()
		if first != q.head {
			continue
		}
		if first == last {
			if next == nil {
				y.Step()
				cur := q.state[i]
				y.Step()
				if q.state[i] != cur {
					continue
				}
				if last == q.tail && q.isStillPending(y, i, phase) {
					y.Step()
					if q.state[i] == cur { // CAS(cur -> empty completion)
						q.state[i] = &kpDesc{phase: cur.phase, pending: false, enqueue: false}
					}
				}
				continue
			}
			q.helpFinishEnq(y)
			continue
		}
		y.Step()
		cur := q.state[i]
		if !q.isStillPending(y, i, phase) {
			return
		}
		if cur.node != first {
			y.Step()
			if q.state[i] != cur { // CAS(cur -> bound)
				continue
			}
			q.state[i] = &kpDesc{phase: cur.phase, pending: true, enqueue: false, node: first}
		}
		y.Step()
		if first.deqTid == IdxNone { // CAS(IdxNone -> i)
			first.deqTid = i
		}
		q.helpFinishDeq(y)
	}
}

func (q *KPQueue) helpFinishDeq(y Stepper) {
	y.Step()
	first := q.head
	y.Step()
	if first != q.head {
		return
	}
	y.Step()
	next := first.next
	y.Step()
	if first != q.head {
		return
	}
	i := first.deqTid
	if i == IdxNone || next == nil {
		return
	}
	y.Step()
	cur := q.state[i]
	descOK := false
	y.Step()
	if q.state[i] == cur && first == q.head && cur.pending && !cur.enqueue {
		y.Step()
		if q.state[i] == cur { // CAS(cur -> completed with the value node)
			q.state[i] = &kpDesc{phase: cur.phase, pending: false, enqueue: false, node: next}
			descOK = true
		}
	}
	if q.m == KPMutGuardedHeadSwing && !descOK {
		// Mutation: skip the head swing when the descriptor check failed
		// — the owner's completion guarantee breaks and a follow-up
		// dequeue by the same thread can re-bind the same head.
		return
	}
	y.Step()
	if q.head == first { // CAS(first -> next)
		q.head = next
	}
}
