package schedsim

import (
	"testing"

	"turnqueue/internal/lincheck"
	"turnqueue/internal/sched"
)

// modelQueue is satisfied by *Queue and the mutants.
type modelQueue interface {
	Enqueue(y Stepper, tid int, item int64)
	Dequeue(y Stepper, tid int) (int64, bool)
}

// runScenarioOn mirrors runScenario for any model implementation.
func runScenarioOn(q modelQueue, sc scenario, chooser sched.Chooser) []lincheck.Op {
	var clock int64
	tick := func() int64 { clock++; return clock }
	histories := make([][]lincheck.Op, len(sc))
	bodies := make([]func(*sched.VThread), len(sc))
	for i, script := range sc {
		i, script := i, script
		bodies[i] = func(y *sched.VThread) {
			for _, v := range script {
				if v > 0 {
					start := tick()
					q.Enqueue(y, i, v)
					histories[i] = append(histories[i], lincheck.Op{
						Kind: lincheck.Enq, Value: v, Start: start, End: tick(),
					})
				} else {
					start := tick()
					got, ok := q.Dequeue(y, i)
					histories[i] = append(histories[i], lincheck.Op{
						Kind: lincheck.Deq, Value: got, Ok: ok, Start: start, End: tick(),
					})
				}
			}
		}
	}
	sched.Run(chooser, bodies...)
	var all []lincheck.Op
	for _, h := range histories {
		all = append(all, h...)
	}
	return all
}

// firstFailingSeed scans seeds for a schedule on which the mutation
// produces a non-linearizable history; -1 if none found.
func firstFailingSeed(m Mutation, maxSeeds int) int {
	for seed := 0; seed < maxSeeds; seed++ {
		for _, sc := range scenarios() {
			for _, ch := range []sched.Chooser{
				sched.NewRandomChooser(uint64(seed)),
				sched.NewBurstChooser(uint64(seed), 40),
			} {
				q := NewMutant(len(sc), m)
				h := runScenarioOn(q, sc, ch)
				if lincheck.Check(h) != nil {
					return seed
				}
			}
		}
	}
	return -1
}

// TestMutantsAreCaught: every seeded bug must be detected within the seed
// budget — this is the sensitivity proof for the whole schedule-explorer
// + checker pipeline. The unmutated control must sail through the same
// budget.
func TestMutantsAreCaught(t *testing.T) {
	budget := 2000
	if testing.Short() {
		budget = 400
	}
	for _, tc := range []struct {
		name string
		m    Mutation
	}{
		{"SkipEntryClear", MutSkipEntryClear},
		{"HeadBeforePublish", MutHeadBeforePublish},
		{"NoGiveUpRecheck", MutNoGiveUpRecheck},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seed := firstFailingSeed(tc.m, budget)
			if seed < 0 {
				t.Fatalf("mutation %s not caught within %d seeds: harness too weak", tc.name, budget)
			}
			t.Logf("caught at seed %d", seed)
		})
	}
	t.Run("ControlPasses", func(t *testing.T) {
		if seed := firstFailingSeed(MutNone, 300); seed >= 0 {
			t.Fatalf("unmutated control flagged at seed %d", seed)
		}
	})
}
