package schedsim

import (
	"testing"

	"turnqueue/internal/lincheck"
	"turnqueue/internal/sched"
)

func kpFirstFailingSeed(m KPMutation, maxSeeds int) int {
	for seed := 0; seed < maxSeeds; seed++ {
		for _, sc := range scenarios() {
			// Burst schedules (long per-thread stretches with abrupt
			// switches) trigger stall-window bugs far more often than
			// uniform randomness; probe both.
			for _, ch := range []sched.Chooser{
				sched.NewRandomChooser(uint64(seed)),
				sched.NewBurstChooser(uint64(seed), 40),
			} {
				q := NewKP(len(sc), m)
				h := runScenarioOn(q, sc, ch)
				if lincheck.Check(h) != nil {
					return seed
				}
			}
		}
	}
	return -1
}

// TestKPRandomSchedules model-checks the KP queue under the same seeded
// random schedules as the Turn queue.
func TestKPRandomSchedules(t *testing.T) {
	seeds := 3000
	if testing.Short() {
		seeds = 300
	}
	for si, sc := range scenarios() {
		for seed := 0; seed < seeds; seed++ {
			for ci, ch := range []sched.Chooser{
				sched.NewRandomChooser(uint64(seed)),
				sched.NewBurstChooser(uint64(seed), 40),
			} {
				q := NewKP(len(sc), KPMutNone)
				h := runScenarioOn(q, sc, ch)
				if err := lincheck.Check(h); err != nil {
					t.Fatalf("scenario %d seed %d chooser %d: %v", si, seed, ci, err)
				}
			}
		}
	}
}

// TestKPAdversarialSchedules drives hog/starve schedules through the KP
// model.
func TestKPAdversarialSchedules(t *testing.T) {
	for si, sc := range scenarios() {
		for pref := 0; pref < len(sc); pref++ {
			for _, invert := range []bool{false, true} {
				q := NewKP(len(sc), KPMutNone)
				h := runScenarioOn(q, sc, sched.StepFirstChooser{Preferred: pref, Invert: invert})
				if err := lincheck.Check(h); err != nil {
					t.Fatalf("scenario %d preferred=%d invert=%v: %v", si, pref, invert, err)
				}
			}
		}
	}
}

// TestKPGuardedHeadSwingIsABug validates internal/kpq's helpFinishDeq
// reasoning empirically: guarding the final head swing behind the
// descriptor check (the naive port) must produce a non-linearizable
// history on some schedule, while the unconditional swing passes all of
// them (TestKPRandomSchedules above).
func TestKPGuardedHeadSwingIsABug(t *testing.T) {
	budget := 3000
	if testing.Short() {
		budget = 600
	}
	seed := kpFirstFailingSeed(KPMutGuardedHeadSwing, budget)
	if seed < 0 {
		t.Fatalf("guarded-head-swing mutant not caught within %d seeds: harness too weak", budget)
	}
	t.Logf("guarded head swing produced a non-linearizable history at seed %d", seed)
}
