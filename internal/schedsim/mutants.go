package schedsim

// Mutation testing support: deliberately broken variants of the model.
// If the schedule explorer plus the exact linearizability checker cannot
// distinguish these mutants from the real algorithm, the harness is too
// weak to trust — TestMutantsAreCaught asserts each mutant fails on some
// schedule.

// Mutation selects a seeded bug.
type Mutation int

// The mutations, each deleting one safeguard the paper's invariants call
// out as load-bearing.
const (
	// MutNone is the unmutated algorithm (must pass, used as control).
	MutNone Mutation = iota
	// MutSkipEntryClear removes the Invariant 7 safeguard: the node at
	// the tail is not cleared from the enqueuers array before helping, so
	// a request can be inserted twice.
	MutSkipEntryClear
	// MutHeadBeforePublish advances the head before publishing the
	// assigned node to its requester, violating Invariant 8: the node can
	// become unreachable before its owner learns about it.
	MutHeadBeforePublish
	// MutNoGiveUpRecheck returns empty without re-checking deqhelp after
	// the rollback, violating Invariant 11: a request satisfied during
	// giveUp is dropped and its item lost.
	MutNoGiveUpRecheck
)

// mutant wraps Queue with a mutation flag consulted at the three
// safeguard sites.
type mutant struct {
	*Queue
	m Mutation
}

// NewMutant creates a model queue with the given mutation.
func NewMutant(maxThreads int, m Mutation) *mutant {
	return &mutant{Queue: New(maxThreads), m: m}
}

// The mutated methods shadow the originals where the mutation applies;
// unmutated paths delegate.

// Enqueue applies MutSkipEntryClear.
func (q *mutant) Enqueue(y Stepper, tid int, item int64) {
	if q.m != MutSkipEntryClear {
		q.Queue.Enqueue(y, tid, item)
		return
	}
	myNode := &Node{item: item, enqTid: tid, deqTid: IdxNone}
	y.Step()
	q.enqueuers[tid] = myNode
	for iter := 0; ; iter++ {
		y.Step()
		if q.enqueuers[tid] == nil {
			return
		}
		// Mutation: without the Invariant 7 clearing, a node at the tail
		// stays visible as a request and can be linked a second time. To
		// keep the mutant terminating, the owner clears its own entry
		// after the paper's iteration bound (the original Algorithm 2
		// line 26), which is exactly the combination the strengthened
		// loop exists to avoid.
		if iter >= q.maxThreads {
			y.Step()
			q.enqueuers[tid] = nil
			return
		}
		y.Step()
		ltail := q.tail
		y.Step()
		if ltail != q.tail {
			continue
		}
		for j := 1; j < q.maxThreads+1; j++ {
			y.Step()
			nodeToHelp := q.enqueuers[(j+ltail.enqTid)%q.maxThreads]
			if nodeToHelp == nil {
				continue
			}
			y.Step()
			if ltail.next == nil {
				ltail.next = nodeToHelp
			}
			break
		}
		y.Step()
		lnext := ltail.next
		if lnext != nil {
			y.Step()
			if q.tail == ltail {
				q.tail = lnext
			}
		}
	}
}

// Dequeue applies MutHeadBeforePublish and MutNoGiveUpRecheck.
func (q *mutant) Dequeue(y Stepper, tid int) (int64, bool) {
	if q.m != MutHeadBeforePublish && q.m != MutNoGiveUpRecheck {
		return q.Queue.Dequeue(y, tid)
	}
	y.Step()
	prReq := q.deqself[tid]
	y.Step()
	myReq := q.deqhelp[tid]
	y.Step()
	q.deqself[tid] = myReq
	for {
		y.Step()
		if q.deqhelp[tid] != myReq {
			break
		}
		y.Step()
		lhead := q.head
		y.Step()
		if lhead != q.head {
			continue
		}
		y.Step()
		if lhead == q.tail {
			y.Step()
			q.deqself[tid] = prReq
			q.giveUp(y, myReq, tid)
			if q.m == MutNoGiveUpRecheck {
				// Mutation: Invariant 11's post-rollback re-check is
				// gone; an assignment that raced the rollback is lost.
				return 0, false
			}
			y.Step()
			if q.deqhelp[tid] != myReq {
				y.Step()
				q.deqself[tid] = myReq
				break
			}
			return 0, false
		}
		y.Step()
		lnext := lhead.next
		y.Step()
		if lhead != q.head {
			continue
		}
		if q.searchNext(y, lhead, lnext) != IdxNone {
			q.mutantCasDeqAndHead(y, lhead, lnext, tid)
		}
	}
	y.Step()
	myNode := q.deqhelp[tid]
	y.Step()
	lhead := q.head
	y.Step()
	if lhead == q.head {
		y.Step()
		if myNode == lhead.next {
			y.Step()
			if q.head == lhead {
				q.head = myNode
			}
		}
	}
	return myNode.item, true
}

// mutantCasDeqAndHead applies MutHeadBeforePublish: the head swings
// before the assignment is published.
func (q *mutant) mutantCasDeqAndHead(y Stepper, lhead, lnext *Node, tid int) {
	if q.m != MutHeadBeforePublish {
		q.casDeqAndHead(y, lhead, lnext, tid)
		return
	}
	// Mutation: Invariant 8 requires publish-then-advance; do the
	// opposite.
	y.Step()
	if q.head == lhead {
		q.head = lnext
	}
	y.Step()
	ldeqTid := lnext.deqTid
	if ldeqTid == tid {
		y.Step()
		q.deqhelp[ldeqTid] = lnext
	} else {
		y.Step()
		ldeqhelp := q.deqhelp[ldeqTid]
		y.Step()
		if ldeqhelp != lnext && lhead == q.head {
			y.Step()
			if q.deqhelp[ldeqTid] == ldeqhelp {
				q.deqhelp[ldeqTid] = lnext
			}
		}
	}
}
