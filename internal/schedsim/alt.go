package schedsim

// Step-instrumented model of the §2.3 single-array dequeue alternative
// (mirroring internal/turnalt), so the rejected design's trickier
// rollback protocol gets the same schedule-exploration scrutiny as the
// published one. The enqueue side is shared with the main model.

// altNode extends Node with the alternative's isRequest flag.
type altNode struct {
	item      int64
	enqTid    int
	deqTid    int
	isRequest bool
	next      *altNode
}

// AltQueue is the single-array model.
type AltQueue struct {
	maxThreads int
	head, tail *altNode
	enqueuers  []*altNode
	dequeuers  []*altNode
}

// NewAlt creates the model for maxThreads virtual threads.
func NewAlt(maxThreads int) *AltQueue {
	sentinel := &altNode{enqTid: 0, deqTid: 0}
	q := &AltQueue{
		maxThreads: maxThreads,
		head:       sentinel,
		tail:       sentinel,
		enqueuers:  make([]*altNode, maxThreads),
		dequeuers:  make([]*altNode, maxThreads),
	}
	for i := 0; i < maxThreads; i++ {
		q.dequeuers[i] = &altNode{deqTid: IdxNone}
	}
	return q
}

// Enqueue is Algorithm 2 over altNode.
func (q *AltQueue) Enqueue(y Stepper, tid int, item int64) {
	myNode := &altNode{item: item, enqTid: tid, deqTid: IdxNone}
	y.Step()
	q.enqueuers[tid] = myNode
	for {
		y.Step()
		if q.enqueuers[tid] == nil {
			return
		}
		y.Step()
		ltail := q.tail
		y.Step()
		if ltail != q.tail {
			continue
		}
		y.Step()
		if q.enqueuers[ltail.enqTid] == ltail {
			y.Step()
			if q.enqueuers[ltail.enqTid] == ltail {
				q.enqueuers[ltail.enqTid] = nil
			}
		}
		for j := 1; j < q.maxThreads+1; j++ {
			y.Step()
			nodeToHelp := q.enqueuers[(j+ltail.enqTid)%q.maxThreads]
			if nodeToHelp == nil {
				continue
			}
			y.Step()
			if ltail.next == nil {
				ltail.next = nodeToHelp
			}
			break
		}
		y.Step()
		lnext := ltail.next
		if lnext != nil {
			y.Step()
			if q.tail == ltail {
				q.tail = lnext
			}
		}
	}
}

// Dequeue is internal/turnalt's single-array dequeue.
func (q *AltQueue) Dequeue(y Stepper, tid int) (int64, bool) {
	y.Step()
	myReq := q.dequeuers[tid]
	y.Step()
	myReq.isRequest = true
	for {
		y.Step()
		if q.dequeuers[tid] != myReq {
			break
		}
		y.Step()
		lhead := q.head
		y.Step()
		if lhead != q.head {
			continue
		}
		y.Step()
		if lhead == q.tail {
			y.Step()
			myReq.isRequest = false // rollback
			q.giveUp(y, myReq, tid)
			y.Step()
			if q.dequeuers[tid] != myReq {
				break
			}
			return 0, false
		}
		y.Step()
		lnext := lhead.next
		y.Step()
		if lhead != q.head {
			continue
		}
		if q.searchNext(y, lhead, lnext) != IdxNone {
			q.casDeqAndHead(y, lhead, lnext, tid)
		}
	}
	y.Step()
	myNode := q.dequeuers[tid]
	y.Step()
	lhead := q.head
	y.Step()
	if lhead == q.head {
		y.Step()
		if myNode == lhead.next {
			y.Step()
			if q.head == lhead {
				q.head = myNode
			}
		}
	}
	return myNode.item, true
}

func (q *AltQueue) searchNext(y Stepper, lhead, lnext *altNode) int {
	y.Step()
	turn := lhead.deqTid
	for idx := turn + 1; idx < turn+q.maxThreads+1; idx++ {
		idDeq := idx % q.maxThreads
		y.Step()
		nd := q.dequeuers[idDeq] // would need an HP publish in the real code
		y.Step()
		if q.dequeuers[idDeq] != nd {
			continue
		}
		y.Step()
		if nd == nil || !nd.isRequest {
			continue
		}
		y.Step()
		if lnext.deqTid == IdxNone {
			y.Step()
			if lnext.deqTid == IdxNone {
				lnext.deqTid = idDeq
			}
		}
		break
	}
	y.Step()
	return lnext.deqTid
}

func (q *AltQueue) casDeqAndHead(y Stepper, lhead, lnext *altNode, tid int) {
	y.Step()
	ldeqTid := lnext.deqTid
	if ldeqTid == tid {
		y.Step()
		q.dequeuers[ldeqTid] = lnext
	} else {
		y.Step()
		ldequeuer := q.dequeuers[ldeqTid]
		y.Step()
		if ldequeuer != lnext && lhead == q.head {
			y.Step()
			if q.dequeuers[ldeqTid] == ldequeuer {
				q.dequeuers[ldeqTid] = lnext
			}
		}
	}
	y.Step()
	if q.head == lhead {
		q.head = lnext
	}
}

func (q *AltQueue) giveUp(y Stepper, myReq *altNode, tid int) {
	y.Step()
	lhead := q.head
	y.Step()
	if q.dequeuers[tid] != myReq {
		return
	}
	y.Step()
	if lhead == q.tail {
		return
	}
	y.Step()
	if lhead != q.head {
		return
	}
	y.Step()
	lnext := lhead.next
	y.Step()
	if lhead != q.head {
		return
	}
	if q.searchNext(y, lhead, lnext) == IdxNone {
		y.Step()
		if lnext.deqTid == IdxNone {
			lnext.deqTid = tid
		}
	}
	q.casDeqAndHead(y, lhead, lnext, tid)
}
