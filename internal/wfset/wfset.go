// Package wfset implements a wait-free ordered set on the copy-on-write
// universal construction — the repository's counterpart to the paper's
// §5 note that the queue's building blocks extend to a wait-free list.
//
// The state is a sorted slice of keys, cloned per combine, so this is for
// small sets (routing tables, subscription lists): exactly the regime the
// paper's networking motivation describes, where the structure is read
// and updated on latency-critical paths but stays small.
package wfset

import (
	"sort"

	"turnqueue/internal/qrt"
	"turnqueue/internal/universal"
)

type opKind uint8

const (
	opInsert opKind = iota
	opRemove
	opContains
)

type op struct {
	kind opKind
	key  int64
}

// Set is a wait-free MPMC ordered set of int64 keys for up to MaxThreads
// registered threads.
type Set struct {
	u *universal.Universal[[]int64, op, bool]
}

// New creates an empty set for maxThreads thread slots.
func New(maxThreads int) *Set {
	clone := func(s []int64) []int64 { return append([]int64(nil), s...) }
	apply := func(s []int64, o op) ([]int64, bool) {
		i := sort.Search(len(s), func(i int) bool { return s[i] >= o.key })
		present := i < len(s) && s[i] == o.key
		switch o.kind {
		case opInsert:
			if present {
				return s, false
			}
			s = append(s, 0)
			copy(s[i+1:], s[i:])
			s[i] = o.key
			return s, true
		case opRemove:
			if !present {
				return s, false
			}
			s = append(s[:i], s[i+1:]...)
			return s, true
		default: // opContains — linearizable membership via the log
			return s, present
		}
	}
	return &Set{u: universal.New(maxThreads, nil, clone, apply)}
}

// MaxThreads returns the thread bound.
func (s *Set) MaxThreads() int { return s.u.MaxThreads() }

// Runtime returns the set's per-thread runtime.
func (s *Set) Runtime() *qrt.Runtime { return s.u.Runtime() }

// Insert adds key, reporting whether it was absent.
func (s *Set) Insert(threadID int, key int64) bool {
	return s.u.Do(threadID, op{kind: opInsert, key: key})
}

// Remove deletes key, reporting whether it was present.
func (s *Set) Remove(threadID int, key int64) bool {
	return s.u.Do(threadID, op{kind: opRemove, key: key})
}

// Contains reports linearizable membership (routed through the operation
// log, so it orders against concurrent inserts/removes).
func (s *Set) Contains(threadID int, key int64) bool {
	return s.u.Do(threadID, op{kind: opContains, key: key})
}

// ContainsFast reports membership against the latest installed snapshot
// without announcing an operation: wait-free population oblivious, still
// linearizable (the snapshot is an instant of the object's history).
func (s *Set) ContainsFast(key int64) bool {
	snap := s.u.Read()
	i := sort.Search(len(snap), func(i int) bool { return snap[i] >= key })
	return i < len(snap) && snap[i] == key
}

// Len returns the size of a linearizable snapshot.
func (s *Set) Len() int { return len(s.u.Read()) }

// Snapshot returns a sorted copy-safe view (callers must not mutate it).
func (s *Set) Snapshot() []int64 { return s.u.Read() }
