package wfset

import (
	"sync"
	"testing"
	"testing/quick"

	"turnqueue/internal/xrand"
)

func TestSequentialSemantics(t *testing.T) {
	s := New(2)
	if !s.Insert(0, 5) || s.Insert(0, 5) {
		t.Fatal("insert semantics broken")
	}
	if !s.Contains(0, 5) || s.Contains(0, 6) {
		t.Fatal("contains semantics broken")
	}
	if !s.ContainsFast(5) || s.ContainsFast(6) {
		t.Fatal("fast contains semantics broken")
	}
	if !s.Remove(0, 5) || s.Remove(0, 5) {
		t.Fatal("remove semantics broken")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSnapshotSorted(t *testing.T) {
	s := New(1)
	for _, k := range []int64{5, 1, 9, 3, 7} {
		s.Insert(0, k)
	}
	snap := s.Snapshot()
	want := []int64{1, 3, 5, 7, 9}
	if len(snap) != len(want) {
		t.Fatalf("snapshot %v", snap)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot %v, want %v", snap, want)
		}
	}
}

func TestQuickModel(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		s := New(2)
		model := map[int64]bool{}
		rng := xrand.NewXoshiro256(seed)
		for i := 0; i < int(opsRaw%300); i++ {
			k := int64(rng.Intn(20))
			tid := rng.Intn(2)
			switch rng.Intn(3) {
			case 0:
				if s.Insert(tid, k) != !model[k] {
					return false
				}
				model[k] = true
			case 1:
				if s.Remove(tid, k) != model[k] {
					return false
				}
				delete(model, k)
			default:
				if s.Contains(tid, k) != model[k] {
					return false
				}
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	// Each worker owns a key range: all of its inserts must report
	// "absent" and all removes "present" regardless of interleaving.
	const workers, per = 6, 500
	s := New(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * 10000)
			for k := int64(0); k < per; k++ {
				if !s.Insert(w, base+k) {
					t.Errorf("worker %d: insert %d reported present", w, base+k)
					return
				}
			}
			for k := int64(0); k < per; k++ {
				if !s.Remove(w, base+k) {
					t.Errorf("worker %d: remove %d reported absent", w, base+k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Fatalf("set not empty: %d", s.Len())
	}
}

func TestConcurrentContestedKey(t *testing.T) {
	// All workers fight over one key: successful inserts and removes must
	// strictly alternate globally, so their totals differ by at most the
	// final membership.
	const workers, per = 4, 1000
	s := New(workers)
	var inserts, removes int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if s.Insert(w, 42) {
					mu.Lock()
					inserts++
					mu.Unlock()
				}
				if s.Remove(w, 42) {
					mu.Lock()
					removes++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	final := int64(0)
	if s.ContainsFast(42) {
		final = 1
	}
	if inserts-removes != final {
		t.Fatalf("inserts=%d removes=%d final=%d: lost or duplicated transition", inserts, removes, final)
	}
}
