package asciiplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out, err := Render(Config{Title: "demo", Width: 40, Height: 10, XLabel: "threads", YLabel: "ops/s"},
		Series{Name: "a", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
		Series{Name: "b", X: []float64{1, 2, 3}, Y: []float64{30, 20, 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "* a", "o b", "threads", "ops/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Errorf("glyphs not plotted:\n%s", out)
	}
}

func TestRenderLogY(t *testing.T) {
	out, err := Render(Config{LogY: true, Width: 30, Height: 8},
		Series{Name: "tail", X: []float64{1, 2, 3, 4}, Y: []float64{100, 1000, 10000, 100000}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "log scale") && !strings.Contains(out, "100K") {
		t.Errorf("log axis labels missing:\n%s", out)
	}
	// On a log axis, equally-spaced decades should land on roughly
	// equally spaced rows: the plot must use more than 2 distinct rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.ContainsRune(line, '*') {
			rows++
		}
	}
	if rows < 3 {
		t.Errorf("log plot collapsed to %d rows:\n%s", rows, out)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(Config{}); err == nil {
		t.Error("no series accepted")
	}
	if _, err := Render(Config{}, Series{Name: "x", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("ragged series accepted")
	}
	if _, err := Render(Config{}, Series{Name: "x", X: []float64{math.NaN()}, Y: []float64{1}}); err == nil {
		t.Error("all-NaN accepted")
	}
	if _, err := Render(Config{LogY: true}, Series{Name: "x", X: []float64{1}, Y: []float64{-5}}); err == nil {
		t.Error("all-nonpositive log-y accepted")
	}
}

func TestSinglePointDoesNotPanic(t *testing.T) {
	out, err := Render(Config{}, Series{Name: "p", X: []float64{5}, Y: []float64{7}})
	if err != nil || !strings.ContainsRune(out, '*') {
		t.Fatalf("single point: err=%v out=%q", err, out)
	}
}

func TestHumanize(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		5:       "5",
		0.25:    "0.25",
		1500:    "1.5K",
		2500000: "2.5M",
		3e9:     "3G",
	}
	for in, want := range cases {
		if got := humanize(in); got != want {
			t.Errorf("humanize(%v) = %q, want %q", in, got, want)
		}
	}
}
