// Package asciiplot renders simple multi-series line charts as text, so
// the cmd/ binaries can draw Figure 1/2/3 shapes directly in a terminal
// next to the numeric tables. Strictly presentation-layer: axes are
// linear or log10, series are plotted with distinct glyphs, and ties on a
// cell are resolved in series order.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on the chart.
type Series struct {
	Name string
	// X and Y must have equal length; points with non-finite values are
	// skipped.
	X []float64
	Y []float64
}

// Config shapes the chart.
type Config struct {
	Title  string
	Width  int  // plot area columns (default 60)
	Height int  // plot area rows (default 16)
	LogY   bool // log10 y-axis (latency tails, throughput ratios)
	YLabel string
	XLabel string
}

var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart. It returns an error when there is nothing
// plottable (no series or no finite points).
func Render(cfg Config, series ...Series) (string, error) {
	if cfg.Width <= 0 {
		cfg.Width = 60
	}
	if cfg.Height <= 0 {
		cfg.Height = 16
	}
	if len(series) == 0 {
		return "", fmt.Errorf("asciiplot: no series")
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("asciiplot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			if cfg.LogY && y <= 0 {
				continue
			}
			points++
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if points == 0 {
		return "", fmt.Errorf("asciiplot: no finite points")
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	yToF := func(y float64) float64 { return y }
	if cfg.LogY {
		yToF = math.Log10
		minY, maxY = yToF(minY), yToF(maxY)
		if minY == maxY {
			minY, maxY = minY-1, maxY+1
		}
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) || (cfg.LogY && y <= 0) {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(cfg.Width-1))
			row := cfg.Height - 1 - int((yToF(y)-minY)/(maxY-minY)*float64(cfg.Height-1))
			if grid[row][col] == ' ' {
				grid[row][col] = g
			}
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		b.WriteString(cfg.Title + "\n")
	}
	yLo, yHi := minY, maxY
	format := func(v float64) string {
		if cfg.LogY {
			v = math.Pow(10, v)
		}
		return humanize(v)
	}
	for r, row := range grid {
		label := "          "
		switch r {
		case 0:
			label = pad10(format(yHi))
		case cfg.Height - 1:
			label = pad10(format(yLo))
		case cfg.Height / 2:
			label = pad10(format((yHi + yLo) / 2))
		}
		b.WriteString(label + " |" + string(row) + "\n")
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", cfg.Width) + "\n")
	b.WriteString(fmt.Sprintf("%11s %-*s%s\n", humanize(minX), cfg.Width-len(humanize(maxX)), "", humanize(maxX)))
	if cfg.XLabel != "" || cfg.YLabel != "" {
		b.WriteString(fmt.Sprintf("%11s x: %s   y: %s%s\n", "", cfg.XLabel, cfg.YLabel, logSuffix(cfg.LogY)))
	}
	for si, s := range series {
		b.WriteString(fmt.Sprintf("%11s %c %s\n", "", glyphs[si%len(glyphs)], s.Name))
	}
	return b.String(), nil
}

func logSuffix(logY bool) string {
	if logY {
		return " (log scale)"
	}
	return ""
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func pad10(s string) string {
	if len(s) >= 10 {
		return s[:10]
	}
	return strings.Repeat(" ", 10-len(s)) + s
}

// humanize renders axis values compactly (K/M/G suffixes, trimmed
// decimals).
func humanize(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return trim(fmt.Sprintf("%.1fG", v/1e9))
	case av >= 1e6:
		return trim(fmt.Sprintf("%.1fM", v/1e6))
	case av >= 1e3:
		return trim(fmt.Sprintf("%.1fK", v/1e3))
	case av >= 10 || av == 0 || av == math.Trunc(av):
		return trim(fmt.Sprintf("%.0f", v))
	default:
		return trim(fmt.Sprintf("%.2f", v))
	}
}

func trim(s string) string {
	if i := strings.IndexByte(s, '.'); i >= 0 {
		// strip ".0" before a suffix or end
		s = strings.Replace(s, ".0", "", 1)
	}
	return s
}
