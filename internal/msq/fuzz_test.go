package msq

// Fuzz target: byte-encoded operation scripts checked against a reference
// FIFO (see internal/qtest.RunModelScript). Run with
// `go test -fuzz=FuzzModelScript ./internal/msq`; the seed corpus runs
// as a normal test.

import (
	"testing"

	"turnqueue/internal/qtest"
)

func FuzzModelScript(f *testing.F) {
	for _, s := range qtest.ScriptSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, script []byte) {
		qtest.RunModelScript(t, New[qtest.Item](4), 4, script)
	})
}
