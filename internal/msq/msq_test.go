package msq

import (
	"testing"

	"turnqueue/internal/qtest"
)

// wrap adapts Queue[qtest.Item] to the harness interface (method set
// already matches; this alias makes the intent explicit).
func newQ(maxThreads int) *Queue[qtest.Item] { return New[qtest.Item](maxThreads) }

func TestSequentialFIFO(t *testing.T) {
	qtest.RunSequentialFIFO(t, newQ(4), 2000)
}

func TestEmptyDequeue(t *testing.T) {
	q := New[int](2)
	for i := 0; i < 5; i++ {
		if v, ok := q.Dequeue(0); ok {
			t.Fatalf("empty dequeue returned %d", v)
		}
	}
	q.Enqueue(0, 7)
	if v, ok := q.Dequeue(1); !ok || v != 7 {
		t.Fatalf("got (%d,%v), want (7,true)", v, ok)
	}
}

func TestMPMCStress(t *testing.T) {
	per := 3000
	if testing.Short() {
		per = 500
	}
	for _, shape := range []struct{ p, c int }{{1, 1}, {2, 2}, {4, 4}, {6, 2}, {2, 6}} {
		q := newQ(shape.p + shape.c)
		qtest.RunMPMC(t, q, qtest.Config{Producers: shape.p, Consumers: shape.c, PerProducer: per})
	}
}

func TestMPMCPairs(t *testing.T) {
	q := newQ(8)
	qtest.RunMPMC(t, q, qtest.Config{Producers: 8, PerProducer: 2000, Mixed: true})
}

func TestNodeRecycling(t *testing.T) {
	q := New[int](1)
	for i := 0; i < 1000; i++ {
		q.Enqueue(0, i)
		if v, ok := q.Dequeue(0); !ok || v != i {
			t.Fatalf("round %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, reuses, _ := q.pool.Stats(); reuses == 0 {
		t.Error("pool never reused a node after steady-state churn; recycling not working")
	}
}
