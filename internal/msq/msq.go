// Package msq implements the Michael-Scott lock-free queue (PODC '96) with
// hazard-pointer memory reclamation — the baseline of the paper's Table 3
// and Figures 1-3 ("probably the simplest of the lock-free queues").
//
// Progress: lock-free, not wait-free. Both operations retry an unbounded
// CAS loop; under contention a thread can starve, which is precisely the
// fat tail the paper's latency experiments exhibit for MS. Consequently
// this package uses the lock-free hazard-pointer discipline of the paper's
// Algorithm 5 lockFreeMethod(): re-read-and-retry rather than bounded
// stepping.
//
// As in internal/core, reclaimed nodes are recycled through a per-thread
// pool so that hazard pointers guard against real ABA under Go's GC.
package msq

import (
	"fmt"
	"sync/atomic"

	"turnqueue/internal/account"
	"turnqueue/internal/hazard"
	"turnqueue/internal/inject"
	"turnqueue/internal/pad"
	"turnqueue/internal/qrt"
)

const (
	hpHead = 0 // dequeue: current head (also enqueue's tail slot)
	hpNext = 1 // dequeue: head's successor (the node whose item we return)
	numHPs = 2
)

type node[T any] struct {
	item T
	next atomic.Pointer[node[T]]
}

// Queue is an MPMC Michael-Scott queue for up to MaxThreads registered
// threads (the bound exists only for the hazard-pointer matrix and pool).
type Queue[T any] struct {
	maxThreads int

	head atomic.Pointer[node[T]]
	_    [2*pad.CacheLine - 8]byte
	tail atomic.Pointer[node[T]]
	_    [2*pad.CacheLine - 8]byte

	hp   *hazard.Domain[node[T]]
	pool *qrt.Pool[node[T]] // per-thread free lists; each owned by its thread
	rt   *qrt.Runtime

	// maxTries records the largest CAS-retry count any single operation
	// needed — the observable the chaos tests contrast against the Turn
	// queue's bounded helping loops (MS has no bound; this grows under an
	// adversarial scheduler). Maintained only under -tags faultpoints so
	// the release hot path keeps zero extra branches.
	maxTries pad.Int64Slot
}

// New creates a queue sized for maxThreads registered threads.
func New[T any](maxThreads int) *Queue[T] {
	if maxThreads <= 0 {
		panic(fmt.Sprintf("msq: maxThreads must be positive, got %d", maxThreads))
	}
	q := &Queue[T]{
		maxThreads: maxThreads,
		pool:       qrt.NewPool[node[T]](maxThreads, poolCap),
		rt:         qrt.New(maxThreads),
	}
	q.hp = hazard.New[node[T]](maxThreads, numHPs, q.recycle, hazard.WithActiveSet(q.rt))
	// Drain-on-release: flush a departing slot's retire backlog while it
	// still owns its free list (see qrt.Runtime.OnRelease).
	q.rt.OnRelease(func(slot int) { q.hp.DrainThread(slot) })
	sentinel := new(node[T])
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

const poolCap = 256

func (q *Queue[T]) recycle(threadID int, nd *node[T]) {
	var zero T
	nd.item = zero
	q.pool.Put(threadID, nd)
}

func (q *Queue[T]) alloc(threadID int, item T) *node[T] {
	if nd := q.pool.Get(threadID); nd != nil {
		nd.item = item
		nd.next.Store(nil)
		return nd
	}
	q.pool.NoteAlloc()
	return &node[T]{item: item}
}

// MaxThreads returns the registered-thread bound.
func (q *Queue[T]) MaxThreads() int { return q.maxThreads }

// Runtime returns the queue's per-thread runtime.
func (q *Queue[T]) Runtime() *qrt.Runtime { return q.rt }

// AccountInto appends the hazard domain and node pool to s (the
// account.Source contract).
func (q *Queue[T]) AccountInto(s *account.Snapshot) {
	s.Hazard = append(s.Hazard, account.CaptureHazard("nodes", q.hp))
	s.Pools = append(s.Pools, account.CapturePool("nodes", q.pool))
	if inject.Enabled {
		s.Counter("max_tries", q.MaxTries())
	}
}

// noteTries folds one operation's retry count into the maxTries
// watermark (CAS-max; racers only ever raise it). Callers gate the call
// on inject.Enabled, so release builds compile it and its branch away.
func (q *Queue[T]) noteTries(tries int64) {
	for {
		cur := q.maxTries.V.Load()
		if cur >= tries || q.maxTries.V.CompareAndSwap(cur, tries) {
			return
		}
	}
}

// MaxTries reports the largest per-operation CAS-retry count observed.
// Always zero in release builds (see the field comment).
func (q *Queue[T]) MaxTries() int64 { return q.maxTries.V.Load() }

// Enqueue appends item. Lock-free: the loop retries until the two-step
// link-then-swing-tail succeeds or is helped along by another thread.
func (q *Queue[T]) Enqueue(threadID int, item T) {
	qrt.CheckSlot(threadID, q.maxThreads)
	q.rt.EnsureActive(threadID)
	nd := q.alloc(threadID, item)
	for tries := int64(1); ; tries++ {
		// Fault point: top of one unbounded CAS retry — the window that
		// makes MS lock-free rather than wait-free.
		inject.Fire(inject.MSQEnqLoop)
		if inject.Enabled {
			q.noteTries(tries)
		}
		ltail := q.hp.ProtectPtr(hpHead, threadID, q.tail.Load())
		if ltail != q.tail.Load() {
			continue
		}
		lnext := ltail.next.Load()
		if lnext != nil {
			// Tail is lagging; help swing it and retry.
			q.tail.CompareAndSwap(ltail, lnext)
			continue
		}
		if ltail.next.CompareAndSwap(nil, nd) {
			q.tail.CompareAndSwap(ltail, nd)
			q.hp.Clear(threadID)
			return
		}
	}
}

// Dequeue removes the item at the head, or reports ok=false when empty.
func (q *Queue[T]) Dequeue(threadID int) (item T, ok bool) {
	qrt.CheckSlot(threadID, q.maxThreads)
	q.rt.EnsureActive(threadID)
	for tries := int64(1); ; tries++ {
		inject.Fire(inject.MSQDeqLoop)
		if inject.Enabled {
			q.noteTries(tries)
		}
		lhead := q.hp.ProtectPtr(hpHead, threadID, q.head.Load())
		if lhead != q.head.Load() {
			continue
		}
		lnext := q.hp.ProtectPtr(hpNext, threadID, lhead.next.Load())
		if lhead != q.head.Load() {
			continue
		}
		if lnext == nil {
			q.hp.Clear(threadID)
			var zero T
			return zero, false
		}
		if ltail := q.tail.Load(); ltail == lhead {
			// Help a lagging tail before detaching its successor.
			q.tail.CompareAndSwap(ltail, lnext)
		}
		if q.head.CompareAndSwap(lhead, lnext) {
			// lnext is protected by hpNext, so reading the item after the
			// CAS cannot race with its reclamation; lhead has left the
			// shared structure and is ours to retire.
			item = lnext.item
			q.hp.Clear(threadID)
			q.hp.Retire(threadID, lhead)
			return item, true
		}
	}
}
