package msq

import "unsafe"

// SizeInfo reports the node size and fixed per-thread footprint (none
// beyond hazard pointers) for the MS queue.
func SizeInfo() (nodeBytes, fixedPerThread uintptr) {
	return unsafe.Sizeof(node[uintptr]{}), 0
}
