// Conformance suite for the reclaim.Reclaimer contract, run over all
// four backends (hazard, epoch, qsbr, eras). Each test states one clause
// of the interface contract and drives every backend through the same
// scenario, in the style of internal/qtest's generic queue driver:
//
//   - protect-blocks-delete: a node loaded through Protect is never
//     handed to the deleter while the protection stands, and is freed
//     once the protection clears and the drains run.
//   - drain-on-release: DrainThread on a slot with no standing
//     protections anywhere frees that slot's entire retire list.
//   - bound-respected: with one protection parked forever, bounded
//     backends plateau (hazard within its stated bound, eras at its
//     live-at-stall plateau) while unbounded backends grow checkpoint
//     over checkpoint — the §3 contrast experiment X12 measures.
//   - crash-leaves-bound: a slot that vanishes without DrainThread
//     leaves a backlog that bounded backends still bound, and that
//     DrainAll at quiescence reclaims completely for every backend.
//   - orphan-residue: residue DrainThread cannot free at release time
//     (pinned by another reader) must not be stranded on the released
//     slot forever; once the reader exits, ordinary retire traffic on
//     other slots frees it (the released-but-never-reused leak fix).
package reclaim_test

import (
	"sync/atomic"
	"testing"

	"turnqueue/internal/epoch"
	"turnqueue/internal/eras"
	"turnqueue/internal/hazard"
	"turnqueue/internal/qsbr"
	"turnqueue/internal/reclaim"
)

const (
	cThreads = 4
	cHPs     = 2
)

// cnode is the conformance node: a payload plus the embedded era tag the
// eras backend requires (ignored by the others).
type cnode struct {
	v   int
	tag reclaim.Tag
}

func (n *cnode) Tag() *reclaim.Tag { return &n.tag }

// newBackend builds one backend over a shared freed-set. The suite is
// single-goroutine (tids are roles, not goroutines), so a plain map is
// fine.
func newBackend(kind reclaim.Kind, freed map[*cnode]bool) reclaim.Reclaimer[cnode] {
	del := func(_ int, n *cnode) { freed[n] = true }
	switch kind {
	case reclaim.KindHazard:
		return hazard.New[cnode](cThreads, cHPs, del)
	case reclaim.KindEpoch:
		return epoch.New[cnode](cThreads, del)
	case reclaim.KindQSBR:
		return qsbr.New[cnode](cThreads, del)
	case reclaim.KindEras:
		return eras.New[cnode](cThreads, cHPs, del, (*cnode).Tag)
	}
	panic("unknown backend " + kind)
}

// alloc makes a node and registers its (re)entry with the backend, as
// every queue's allocation path must.
func alloc(rc reclaim.Reclaimer[cnode], tid int) *cnode {
	n := &cnode{}
	rc.NoteAlloc(tid, n)
	return n
}

// churn retires count fresh nodes from tid — traffic that gives the
// backend every opportunity to advance its epoch/era/sequence and sweep.
func churn(rc reclaim.Reclaimer[cnode], tid, count int) {
	for i := 0; i < count; i++ {
		rc.Retire(tid, alloc(rc, tid))
	}
}

func forEachBackend(t *testing.T, body func(t *testing.T, kind reclaim.Kind, rc reclaim.Reclaimer[cnode], freed map[*cnode]bool)) {
	for _, kind := range reclaim.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			freed := make(map[*cnode]bool)
			body(t, kind, newBackend(kind, freed), freed)
		})
	}
}

func TestConformanceProtectBlocksDelete(t *testing.T) {
	forEachBackend(t, func(t *testing.T, kind reclaim.Kind, rc reclaim.Reclaimer[cnode], freed map[*cnode]bool) {
		n := alloc(rc, 1)
		var src atomic.Pointer[cnode]
		src.Store(n)
		got, ok := rc.Protect(0, 0, &src)
		if !ok || got != n {
			t.Fatalf("uncontended Protect = (%p, %v), want (%p, true)", got, ok, n)
		}
		// Unlink and retire from another thread, then churn hard: the
		// backend must not free n while tid 0's protection stands.
		src.Store(nil)
		rc.Retire(1, n)
		churn(rc, 1, 128)
		if freed[n] {
			t.Fatal("protected node handed to deleter while protection stood")
		}
		// Protection drops, drains run: now it must go.
		rc.Clear(0)
		rc.DrainThread(1)
		rc.DrainAll()
		if !freed[n] {
			t.Fatal("node not freed after Clear + DrainThread + DrainAll")
		}
		if b := rc.Backlog(); b != 0 {
			t.Fatalf("backlog %d after full drain at quiescence, want 0", b)
		}
	})
}

func TestConformanceDrainOnRelease(t *testing.T) {
	forEachBackend(t, func(t *testing.T, kind reclaim.Kind, rc reclaim.Reclaimer[cnode], freed map[*cnode]bool) {
		const retires = 10
		nodes := make([]*cnode, retires)
		for i := range nodes {
			nodes[i] = alloc(rc, 2)
		}
		rc.RetireBatch(2, nodes)
		// No protections anywhere: the release-time drain must clear the
		// slot completely.
		rc.DrainThread(2)
		if sb := rc.SlotBacklog(2); sb != 0 {
			t.Fatalf("slot backlog %d after DrainThread with no readers, want 0", sb)
		}
		if b := rc.Backlog(); b != 0 {
			t.Fatalf("backlog %d after DrainThread with no readers, want 0", b)
		}
		for i, n := range nodes {
			if !freed[n] {
				t.Fatalf("node %d not freed by release-time drain", i)
			}
		}
	})
}

func TestConformanceBoundRespected(t *testing.T) {
	forEachBackend(t, func(t *testing.T, kind reclaim.Kind, rc reclaim.Reclaimer[cnode], freed map[*cnode]bool) {
		// Park a reader: protect a node from tid 0 and never clear, then
		// retire it so the pin is real and churn from tid 3.
		n := alloc(rc, 3)
		var src atomic.Pointer[cnode]
		src.Store(n)
		if _, ok := rc.Protect(0, 0, &src); !ok {
			t.Fatal("uncontended Protect failed")
		}
		src.Store(nil)
		rc.Retire(3, n)

		checkpoint := func() int { churn(rc, 3, 200); return rc.Backlog() }
		b1, b2, b3 := checkpoint(), checkpoint(), checkpoint()
		bound, bounded := rc.Bound()
		if bounded {
			// The backlog must plateau under a stalled reader: hazard
			// stays within its stated bound outright; eras stops growing
			// once the stall era is passed (live-at-stall plateau). Allow
			// one thread-row of scan slack between checkpoints.
			if b3 > b2+cThreads {
				t.Fatalf("bounded backend kept growing under a stalled reader: checkpoints %d/%d/%d (bound %d)",
					b1, b2, b3, bound)
			}
			if kind == reclaim.KindHazard && (b1 > bound || b2 > bound || b3 > bound) {
				t.Fatalf("hazard backlog exceeded its bound %d: checkpoints %d/%d/%d", bound, b1, b2, b3)
			}
		} else {
			// The honest answer for epoch/qsbr: one stalled reader pins
			// every later retire, so the backlog must grow unboundedly —
			// anything else would mean the backend freed pinned memory.
			if !(b1 < b2 && b2 < b3) {
				t.Fatalf("unbounded backend failed to grow under a stalled reader: checkpoints %d/%d/%d", b1, b2, b3)
			}
		}
		if freed[n] {
			t.Fatal("pinned node freed while the stalled protection stood")
		}
		rc.Clear(0)
		rc.DrainThread(3)
		rc.DrainAll()
		if b := rc.Backlog(); b != 0 {
			t.Fatalf("backlog %d after stall release and full drain, want 0", b)
		}
	})
}

func TestConformanceCrashLeavesBound(t *testing.T) {
	forEachBackend(t, func(t *testing.T, kind reclaim.Kind, rc reclaim.Reclaimer[cnode], freed map[*cnode]bool) {
		// tid 1 retires a pinned node plus some traffic, then vanishes
		// without DrainThread — the crashed-slot scenario.
		n := alloc(rc, 1)
		var src atomic.Pointer[cnode]
		src.Store(n)
		if _, ok := rc.Protect(0, 0, &src); !ok {
			t.Fatal("uncontended Protect failed")
		}
		src.Store(nil)
		rc.Retire(1, n)
		churn(rc, 1, 32)
		if bound, bounded := rc.Bound(); bounded {
			if b := rc.Backlog(); kind == reclaim.KindHazard && b > bound {
				t.Fatalf("crashed slot pushed backlog %d past bound %d", b, bound)
			}
		}
		// The reader exits; quiescence is reached without the crashed
		// slot ever draining. DrainAll must reclaim everything anyway.
		rc.Clear(0)
		rc.DrainAll()
		if b := rc.Backlog(); b != 0 {
			t.Fatalf("backlog %d after DrainAll at quiescence, want 0", b)
		}
		if !freed[n] {
			t.Fatal("crashed slot's pinned node not freed by DrainAll")
		}
	})
}

// TestConformanceOrphanResidueFreedByLaterTraffic is the regression for
// the released-but-never-reused slot leak: DrainThread migrates residue
// it cannot free (pinned by a still-online reader) off the slot, and
// ordinary retire traffic on other slots frees it once the reader exits
// — no DrainAll, no slot reuse. Specific to the region backends; hazard
// and eras keep (bounded) residue on the slot by design.
func TestConformanceOrphanResidueFreedByLaterTraffic(t *testing.T) {
	for _, kind := range []reclaim.Kind{reclaim.KindEpoch, reclaim.KindQSBR} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			freed := make(map[*cnode]bool)
			rc := newBackend(kind, freed)
			// Reader online on tid 0.
			r := alloc(rc, 0)
			var src atomic.Pointer[cnode]
			src.Store(r)
			if _, ok := rc.Protect(0, 0, &src); !ok {
				t.Fatal("uncontended Protect failed")
			}
			// tid 1 retires 5 nodes the reader pins, then releases.
			pinned := make([]*cnode, 5)
			for i := range pinned {
				pinned[i] = alloc(rc, 1)
				rc.Retire(1, pinned[i])
			}
			rc.DrainThread(1)
			if sb := rc.SlotBacklog(1); sb != 0 {
				t.Fatalf("released slot still owns %d residue entries; DrainThread must migrate them", sb)
			}
			if b := rc.Backlog(); b < len(pinned) {
				t.Fatalf("backlog %d lost pinned residue (want >= %d)", b, len(pinned))
			}
			// Reader exits. Plain retire traffic on tid 2 must now free
			// the orphaned residue as a side effect.
			rc.Clear(0)
			churn(rc, 2, 64)
			for i, n := range pinned {
				if !freed[n] {
					t.Fatalf("orphaned node %d not freed by later retire traffic (stranded-slot leak)", i)
				}
			}
		})
	}
}
