// Package reclaim defines the memory-reclamation backend contract shared
// by every queue in this repository. The paper's §3 builds one scheme —
// wait-free bounded hazard pointers — and contrasts it with epoch-based
// reclamation; this package abstracts the seam so the same queue can run
// on either, or on the two additional schemes the follow-up literature
// supplies (QSBR from the classic RCU lineage, and WFE-style era tracking
// from "Universal Wait-Free Memory Reclamation"). The four backends trade
// off along three axes the Reclaimer interface makes explicit:
//
//	backend  read overhead            backlog bound        reclaim progress
//	hazard   store+fence per access   maxThreads·(H+R+1)   wait-free bounded
//	epoch    1 store per op (region)  none (one stalled    blocking
//	                                  reader pins all)
//	qsbr     ~1 load per access       none (as epoch)      blocking
//	eras     store per era change     plateau: live-at-    wait-free bounded
//	                                  stall + slack
//
// # The Protect contract
//
// Protect(index, tid, src) publishes protection index for thread tid,
// loads *src inside the backend's validated window, and returns the
// loaded node. This differs from the bare hazard-pointer primitive
// (hazard.ProtectPtr), which takes an already-loaded node and leaves the
// load-store-load revalidation to the caller: era-based backends cannot
// be validated by caller-side pointer comparison at all (a node recycled
// with a fresh birth era passes address equality while escaping the
// reservation), so the load must happen between the backend's publish and
// its own validation. ok=false means the backend could not validate the
// protection (for hazard: src moved under the store; for eras: the era
// advanced twice during the window); the caller treats it exactly like
// the paper's failed load-store-load — advance the enclosing bounded
// loop, do not retry in place — which preserves the wait-free accounting.
// Backends whose validation cannot fail (epoch, qsbr) always return
// ok=true.
//
// Region-based backends (epoch, qsbr) map Protect onto their read-side
// critical section: the first Protect of an operation announces the
// thread online, and Clear ends the region. For those backends ClearOne
// is a no-op — dropping one protection index mid-operation must not end
// the region that still covers the others.
//
// # Quiescence contract
//
// Bound() returns the backend's stated maximum backlog at quiescence —
// every thread has Cleared, DrainThread has run for every slot, and
// DrainAll has swept the orphans — together with whether the backend is
// bounded at all mid-run. VerifyQuiescent enforces backlog ≤ bound only
// for bounded backends; for epoch and qsbr the honest answer is
// bounded=false, which is precisely the §3 contrast experiment X12
// measures.
package reclaim

import (
	"sync/atomic"

	"turnqueue/internal/account"
)

// Kind names a reclamation backend. The public API (turnqueue.Reclaimer)
// mirrors these values.
type Kind string

const (
	// KindHazard is the paper's §3.1 wait-free bounded hazard pointers.
	KindHazard Kind = "hazard"
	// KindEpoch is three-epoch reclamation (the §3 blocking baseline).
	KindEpoch Kind = "epoch"
	// KindQSBR is quiescent-state-based reclamation: near-zero read
	// overhead, blocking reclaim.
	KindQSBR Kind = "qsbr"
	// KindEras is WFE-style era tracking: birth/retire era tags plus
	// per-slot reservations, wait-free with a bounded (plateauing)
	// backlog.
	KindEras Kind = "eras"
)

// Kinds lists every backend, in the order the experiments report them.
func Kinds() []Kind { return []Kind{KindHazard, KindEpoch, KindQSBR, KindEras} }

// Valid reports whether k names a known backend.
func (k Kind) Valid() bool {
	switch k {
	case KindHazard, KindEpoch, KindQSBR, KindEras:
		return true
	}
	return false
}

// Tag is the per-node era interval the eras backend maintains: Birth is
// stamped at allocation (NoteAlloc), Retire at Retire. A node is
// reclaimable once no reservation r satisfies Birth ≤ r ≤ Retire. Nodes
// embed a Tag and hand the backend an accessor; backends that do not use
// eras never touch it. The fields are plain int64s: both are written by
// the node's current owner before the node re-enters (Birth) or after it
// has left (Retire) the shared structure, and read only by the retiring
// thread's own scan, so no concurrent access exists.
type Tag struct {
	Birth  int64
	Retire int64
}

// ActiveSet is the slot-occupancy view backends scan with; implemented by
// qrt.Runtime. ActiveLimit bounds the populated row range (monotone
// high-water mark); ActiveWord(w) returns the occupancy bits of slots
// [w*64, w*64+64). The contract scans rely on: a slot is in the set
// before its thread can publish a protection, and leaves it only after
// the thread's last operation.
type ActiveSet interface {
	ActiveLimit() int
	ActiveWord(w int) uint64
}

// Reclaimer is the backend contract. All methods taking tid may be called
// concurrently from distinct tids; per-tid state (retire lists, region
// flags) is owned by that tid.
type Reclaimer[T any] interface {
	// Protect publishes protection index for tid over the pointer held
	// by src and returns the load made inside the backend's validated
	// window. On ok=false the returned node must not be dereferenced and
	// the caller advances its bounded loop (see the package comment).
	Protect(index, tid int, src *atomic.Pointer[T]) (node *T, ok bool)
	// ClearOne drops one protection index where the backend has
	// per-index state; region-based backends ignore it.
	ClearOne(index, tid int)
	// Clear drops every protection tid holds (ends the region for
	// region-based backends). Called at operation end.
	Clear(tid int)
	// NoteAlloc records that node is (re)entering circulation under tid.
	// Only the eras backend uses it (birth-era stamping); others no-op.
	NoteAlloc(tid int, node *T)
	// Retire hands node to the backend for deferred reclamation.
	Retire(tid int, node *T)
	// RetireBatch retires nodes with at most one scan.
	RetireBatch(tid int, nodes []*T)
	// DrainThread makes a bounded effort to reclaim tid's retire list;
	// called from qrt's release hook. Residue it cannot free moves to a
	// shared orphan list swept by later retires and by DrainAll, so a
	// released-and-never-reused slot cannot strand nodes forever.
	DrainThread(tid int)
	// DrainAll sweeps every retire list and the orphan list. Callers
	// must guarantee quiescence (no thread mid-operation); queue Close
	// is the intended site.
	DrainAll()
	// Backlog returns the retired-but-unreclaimed node count.
	Backlog() int
	// SlotBacklog returns tid's share of the backlog.
	SlotBacklog(tid int) int
	// Bound returns the stated quiescence backlog bound and whether the
	// backend bounds its backlog mid-run at all (see package comment).
	Bound() (n int, bounded bool)
	// AccountInto appends this backend's domain snapshot to s under name.
	AccountInto(s *account.Snapshot, name string)
}
