// Package faaq implements a fetch-and-add segment queue in the style of
// the Yang-Mellor-Crummey queue's fast path (PPoPP '16): the queue is a
// linked list of fixed-size segments; enqueuers and dequeuers take tickets
// with FAA and meet in the ticketed cell.
//
// This is the paper's §1/§4 critique target, built so the critiques are
// observable rather than taken on faith:
//
//   - Progress relies on FAA, not just CAS (Table 1's "Needs Atomic
//     Instruction" column) and the retry loop around segment transitions
//     makes it lock-free, not wait-free — YMC's wait-free slow path is a
//     further mechanism on top of this fast path, and its unbounded
//     node-walk is what the paper's §1 dissects.
//   - A dequeue ticket taken on an empty cell is wasted: the cell is
//     poisoned and can never carry an item (the paper: "the ticket taken
//     by a dequeue can not be reused"). WastedTickets counts them.
//   - Advancing to a fresh segment allocates SegmentSize cells at once,
//     the latency spike the paper attributes to YMC's 10M-entry arrays
//     (size configurable here; the spike recurs proportionally more often
//     with smaller segments).
//   - Memory reclamation is epoch-based (internal/epoch), faithful to
//     YMC's published scheme — and therefore *blocking* on the reclaim
//     side, the §3/Table 2 claim that cmd/reclaim demonstrates.
package faaq

import (
	"fmt"
	"sync/atomic"

	"turnqueue/internal/account"
	"turnqueue/internal/epoch"
	"turnqueue/internal/inject"
	"turnqueue/internal/pad"
	"turnqueue/internal/qrt"
)

// DefaultSegmentSize is the cells-per-segment default. YMC uses ~10^7;
// that would hide the allocation spike on laptop-scale runs, so the
// default is small enough for the spike to recur within a benchmark.
const DefaultSegmentSize = 1024

type segment[T any] struct {
	deqIdx atomic.Int64
	_      [2*pad.CacheLine - 8]byte
	enqIdx atomic.Int64
	_      [2*pad.CacheLine - 8]byte
	next   atomic.Pointer[segment[T]]
	cells  []atomic.Pointer[T]
}

func newSegment[T any](size int) *segment[T] {
	return &segment[T]{cells: make([]atomic.Pointer[T], size)}
}

// Queue is an MPMC FAA segment queue for up to MaxThreads registered
// threads (the bound exists only for the epoch-reclamation domain).
type Queue[T any] struct {
	maxThreads int
	segSize    int

	head atomic.Pointer[segment[T]]
	_    [2*pad.CacheLine - 8]byte
	tail atomic.Pointer[segment[T]]
	_    [2*pad.CacheLine - 8]byte

	// taken poisons a cell whose dequeue ticket arrived before any item.
	taken *T

	epochs *epoch.Domain[segment[T]]
	rt     *qrt.Runtime

	wasted    pad.Int64Slot // dequeue tickets burnt on empty cells
	segAllocs pad.Int64Slot // segments allocated (each is a latency spike)
}

// Option configures a Queue.
type Option func(*config)

type config struct {
	maxThreads int
	segSize    int
}

// WithMaxThreads sets the registered-thread bound.
func WithMaxThreads(n int) Option { return func(c *config) { c.maxThreads = n } }

// WithSegmentSize sets the cells-per-segment count.
func WithSegmentSize(n int) Option { return func(c *config) { c.segSize = n } }

// New creates an empty queue.
func New[T any](opts ...Option) *Queue[T] {
	cfg := config{maxThreads: qrt.DefaultMaxThreads, segSize: DefaultSegmentSize}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxThreads <= 0 || cfg.segSize <= 0 {
		panic(fmt.Sprintf("faaq: invalid config maxThreads=%d segSize=%d", cfg.maxThreads, cfg.segSize))
	}
	q := &Queue[T]{
		maxThreads: cfg.maxThreads,
		segSize:    cfg.segSize,
		taken:      new(T),
		rt:         qrt.New(cfg.maxThreads),
	}
	q.epochs = epoch.New[segment[T]](cfg.maxThreads, func(int, *segment[T]) {
		// Drop for the GC; segments are not recycled, as in YMC.
	})
	// Drain-on-release: a bounded attempt to age out the departing slot's
	// retired segments. Best-effort only — epoch reclamation stays blocking
	// (the §3 contrast), so residue is reported, not forced.
	q.rt.OnRelease(func(slot int) { q.epochs.DrainThread(slot) })
	first := newSegment[T](cfg.segSize)
	q.head.Store(first)
	q.tail.Store(first)
	return q
}

// MaxThreads returns the registered-thread bound.
func (q *Queue[T]) MaxThreads() int { return q.maxThreads }

// Runtime returns the queue's per-thread runtime.
func (q *Queue[T]) Runtime() *qrt.Runtime { return q.rt }

// Epochs exposes the reclamation domain for the §3 blocking experiment.
func (q *Queue[T]) Epochs() *epoch.Domain[segment[T]] { return q.epochs }

// AccountInto appends the epoch domain and the queue's own counters to s
// (the account.Source contract).
func (q *Queue[T]) AccountInto(s *account.Snapshot) {
	es := account.CaptureEpoch(q.epochs)
	s.Epoch = &es
	s.Counter("wasted_tickets", q.wasted.V.Load())
	s.Counter("segment_allocs", q.segAllocs.V.Load())
}

// Stats reports wasted dequeue tickets and segment allocations.
func (q *Queue[T]) Stats() (wastedTickets, segmentAllocs int64) {
	return q.wasted.V.Load(), q.segAllocs.V.Load()
}

// Enqueue appends item. Lock-free: a full segment forces a retry through
// the segment-advance path.
func (q *Queue[T]) Enqueue(threadID int, item T) {
	qrt.CheckSlot(threadID, q.maxThreads)
	boxed := new(T)
	*boxed = item
	q.epochs.Enter(threadID)
	// Fault point: inside the read-side critical section — a thread
	// parked here pins the global epoch, and the retired-segment backlog
	// grows without bound (the §3 blocking-reclamation scenario).
	inject.Fire(inject.FAAQRead)
	for {
		ltail := q.tail.Load()
		idx := ltail.enqIdx.Add(1) - 1
		if idx >= int64(q.segSize) {
			// Segment full: advance (or help advance) to the next one.
			if ltail != q.tail.Load() {
				continue
			}
			lnext := ltail.next.Load()
			if lnext == nil {
				seg := newSegment[T](q.segSize)
				q.segAllocs.V.Add(1)
				seg.enqIdx.Store(1)
				seg.cells[0].Store(boxed)
				if ltail.next.CompareAndSwap(nil, seg) {
					q.tail.CompareAndSwap(ltail, seg)
					q.epochs.Exit(threadID)
					return
				}
				// Lost the race; our pre-filled segment is garbage.
			} else {
				q.tail.CompareAndSwap(ltail, lnext)
			}
			continue
		}
		if ltail.cells[idx].CompareAndSwap(nil, boxed) {
			q.epochs.Exit(threadID)
			return
		}
		// A dequeuer poisoned our cell first; burn the ticket and retry.
	}
}

// Dequeue removes the item at the head, or reports ok=false when empty.
func (q *Queue[T]) Dequeue(threadID int) (item T, ok bool) {
	qrt.CheckSlot(threadID, q.maxThreads)
	q.epochs.Enter(threadID)
	defer q.epochs.Exit(threadID)
	inject.Fire(inject.FAAQRead)
	for {
		lhead := q.head.Load()
		if lhead.deqIdx.Load() >= lhead.enqIdx.Load() && lhead.next.Load() == nil {
			var zero T
			return zero, false
		}
		idx := lhead.deqIdx.Add(1) - 1
		if idx >= int64(q.segSize) {
			// Segment drained: move to the next one and retire this one.
			lnext := lhead.next.Load()
			if lnext == nil {
				var zero T
				return zero, false
			}
			if q.head.CompareAndSwap(lhead, lnext) {
				q.epochs.Retire(threadID, lhead)
			}
			continue
		}
		cell := lhead.cells[idx].Swap(q.taken)
		if cell != nil && cell != q.taken {
			return *cell, true
		}
		// The ticket met an empty cell: it is wasted forever (the paper's
		// critique); the enqueuer that later draws this ticket retries.
		q.wasted.V.Add(1)
		// If the queue still looks empty, report it rather than burning
		// tickets in a loop.
		if lhead.deqIdx.Load() >= lhead.enqIdx.Load() && lhead.next.Load() == nil {
			var zero T
			return zero, false
		}
	}
}
