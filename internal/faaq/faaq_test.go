package faaq

import (
	"testing"

	"turnqueue/internal/qtest"
)

func TestSequentialFIFO(t *testing.T) {
	qtest.RunSequentialFIFO(t, New[qtest.Item](WithMaxThreads(4), WithSegmentSize(16)), 2000)
}

func TestEmptyDequeue(t *testing.T) {
	q := New[int](WithMaxThreads(2), WithSegmentSize(4))
	for i := 0; i < 5; i++ {
		if v, ok := q.Dequeue(0); ok {
			t.Fatalf("empty dequeue returned %d", v)
		}
	}
	q.Enqueue(0, 7)
	if v, ok := q.Dequeue(1); !ok || v != 7 {
		t.Fatalf("got (%d,%v), want (7,true)", v, ok)
	}
}

func TestSegmentTransitions(t *testing.T) {
	// Tiny segments force many allocate-and-advance transitions.
	q := New[int](WithMaxThreads(1), WithSegmentSize(3))
	const n = 100
	for i := 0; i < n; i++ {
		q.Enqueue(0, i)
	}
	for i := 0; i < n; i++ {
		if v, ok := q.Dequeue(0); !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	_, segs := q.Stats()
	if segs < int64(n/3-1) {
		t.Errorf("expected ~%d segment allocations, got %d", n/3, segs)
	}
}

func TestWastedTickets(t *testing.T) {
	// Dequeues on an empty queue after at least one enqueue race burn
	// tickets; directly provoke by alternating.
	q := New[int](WithMaxThreads(2), WithSegmentSize(8))
	q.Enqueue(0, 1)
	q.Dequeue(0)
	// Empty-queue dequeues may or may not burn tickets depending on the
	// index state; this just exercises the path.
	for i := 0; i < 20; i++ {
		q.Dequeue(1)
	}
	wasted, _ := q.Stats()
	t.Logf("wasted tickets: %d", wasted)
}

func TestMPMCStress(t *testing.T) {
	per := 3000
	if testing.Short() {
		per = 500
	}
	for _, shape := range []struct{ p, c int }{{1, 1}, {2, 2}, {4, 4}} {
		q := New[qtest.Item](WithMaxThreads(shape.p+shape.c), WithSegmentSize(64))
		qtest.RunMPMC(t, q, qtest.Config{Producers: shape.p, Consumers: shape.c, PerProducer: per})
	}
}

func TestMPMCPairs(t *testing.T) {
	q := New[qtest.Item](WithMaxThreads(8), WithSegmentSize(128))
	qtest.RunMPMC(t, q, qtest.Config{Producers: 8, PerProducer: 2000, Mixed: true})
}
