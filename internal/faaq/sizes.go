package faaq

import "unsafe"

// SizeInfo reports the Table 4 figures for the FAA segment queue: the
// fixed per-segment overhead, the per-cell cost (the paper normalizes YMC
// to one cell per node, 40 bytes; here a cell is one pointer and the
// segment header is amortized across SegmentSize cells), and the fixed
// per-thread footprint (one epoch announcement slot).
func SizeInfo() (segmentHeaderBytes, perCellBytes, fixedPerThread uintptr) {
	return unsafe.Sizeof(segment[uintptr]{}), unsafe.Sizeof(uintptr(0)), 8
}
