package kpq

import (
	"testing"

	"turnqueue/internal/qtest"
)

func TestSequentialFIFO(t *testing.T) {
	qtest.RunSequentialFIFO(t, New[qtest.Item](WithMaxThreads(4)), 1000)
}

func TestEmptyDequeue(t *testing.T) {
	q := New[int](WithMaxThreads(2))
	for i := 0; i < 10; i++ {
		if v, ok := q.Dequeue(0); ok {
			t.Fatalf("empty dequeue returned %d", v)
		}
	}
	q.Enqueue(1, 42)
	if v, ok := q.Dequeue(0); !ok || v != 42 {
		t.Fatalf("got (%d,%v), want (42,true)", v, ok)
	}
	if _, ok := q.Dequeue(1); ok {
		t.Fatal("queue should be empty again")
	}
}

func TestInterleaved(t *testing.T) {
	q := New[int](WithMaxThreads(1))
	next, expect := 0, 0
	for round := 0; round < 300; round++ {
		for i := 0; i < round%6; i++ {
			q.Enqueue(0, next)
			next++
		}
		for i := 0; i < round%4; i++ {
			if v, ok := q.Dequeue(0); ok {
				if v != expect {
					t.Fatalf("round %d: got %d, want %d", round, v, expect)
				}
				expect++
			}
		}
	}
	for expect < next {
		v, ok := q.Dequeue(0)
		if !ok || v != expect {
			t.Fatalf("drain: got (%d,%v), want (%d,true)", v, ok, expect)
		}
		expect++
	}
}

func TestMPMCStress(t *testing.T) {
	per := 2000
	if testing.Short() {
		per = 300
	}
	for _, shape := range []struct{ p, c int }{{1, 1}, {2, 2}, {4, 4}, {6, 2}} {
		q := New[qtest.Item](WithMaxThreads(shape.p + shape.c))
		qtest.RunMPMC(t, q, qtest.Config{Producers: shape.p, Consumers: shape.c, PerProducer: per})
	}
}

func TestMPMCPairs(t *testing.T) {
	q := New[qtest.Item](WithMaxThreads(8))
	qtest.RunMPMC(t, q, qtest.Config{Producers: 8, PerProducer: 1000, Mixed: true})
}

func TestMPMCNoPooling(t *testing.T) {
	q := New[qtest.Item](WithMaxThreads(8), WithPooling(false))
	qtest.RunMPMC(t, q, qtest.Config{Producers: 4, Consumers: 4, PerProducer: 1000})
}

func TestAllocChurn(t *testing.T) {
	// Without pooling, KP must allocate several descriptors per operation
	// — the churn Table 4 charges it for.
	q := New[int](WithMaxThreads(2), WithPooling(false))
	const n = 500
	for i := 0; i < n; i++ {
		q.Enqueue(0, i)
		q.Dequeue(1)
	}
	descs, nodes := q.AllocStats()
	if nodes < n {
		t.Errorf("expected >= %d node allocations, got %d", n, nodes)
	}
	if descs < 2*n {
		t.Errorf("expected >= %d descriptor allocations (2 per op pair minimum), got %d", 2*n, descs)
	}
	t.Logf("alloc churn for %d enq+deq pairs: %d descs (%.1f/pair), %d nodes", n, descs, float64(descs)/n, nodes)
}
