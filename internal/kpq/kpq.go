// Package kpq implements the Kogan-Petrank wait-free MPMC queue (PPoPP
// '11), including the reclamation port the paper describes in §3.2: the
// original algorithm assumes a garbage collector (its artifact is Java);
// here it runs with Hazard Pointers for the descriptor lifecycle and
// Conditional Hazard Pointers for the node lifecycle, exactly the
// combination the paper contributes.
//
// Algorithm recap. Every thread has a slot in a state array holding an
// immutable operation descriptor (phase, pending, enqueue, node). An
// operation picks a phase greater than every phase it observes, installs a
// pending descriptor, then helps every pending operation with phase <= its
// own until its descriptor is no longer pending. The list manipulation
// underneath is Michael-Scott: link at tail, swing tail, claim the head's
// deqTid, swing head.
//
// Reclamation port (§3.2):
//   - Descriptors are replaced by CAS; the replaced descriptor is retired
//     with plain HP. Every CAS window protects the expected descriptor so
//     a pooled descriptor cannot ABA back into the same slot.
//   - Nodes are retired by the thread that advances the head past them,
//     with a CHP condition "the item has been taken": the dequeuer that
//     owns the value reaches it through the state array after the head has
//     already moved, so the node may be freed only once that dequeuer has
//     swapped the item out (the paper's Node.item = nullptr condition).
//   - Descriptor and node fields that survive into pools are atomic, so a
//     validation-failed reader that raced a recycle reads a stale value,
//     never tears.
//
// Memory profile: each operation allocates a fresh descriptor per state
// transition plus (for enqueue) a node and a boxed item — the allocation
// churn Table 4 charges KP for (>= 5 heap allocations per item), which
// this implementation reproduces when pooling is disabled.
package kpq

import (
	"fmt"
	"sync/atomic"

	"turnqueue/internal/account"
	"turnqueue/internal/hazard"
	"turnqueue/internal/inject"
	"turnqueue/internal/pad"
	"turnqueue/internal/qrt"
)

const idxNone int32 = -1

// Hazard-pointer slots for the node domain.
const (
	hpHead   = 0
	hpTail   = 1
	hpNext   = 2
	numNodeH = 3
)

// Hazard-pointer slots for the descriptor domain.
const (
	hpDesc   = 0
	numDescH = 1
)

// hardIterCap backstops the helping loops; see internal/core.
const hardIterCap = 1 << 22

// node is the KP queue node: Michael-Scott fields plus the enqueuer and
// dequeuer thread ids. The item is a boxed pointer so the §3.2 CHP
// condition "item taken" has a representable empty state, matching the
// paper's change of Node.item to std::atomic<>.
type node[T any] struct {
	item   atomic.Pointer[T]
	enqTid int32
	deqTid atomic.Int32
	next   atomic.Pointer[node[T]]
}

// opDesc is KP's operation descriptor. Logically immutable once published;
// the fields are atomic only so readers that lose a validation race with a
// pooled reuse read stale-but-sound values (see the package comment).
type opDesc[T any] struct {
	phase   atomic.Int64
	pending atomic.Bool
	enqueue atomic.Bool
	node    atomic.Pointer[node[T]]
}

// Queue is the KP wait-free MPMC queue for up to MaxThreads registered
// threads.
type Queue[T any] struct {
	maxThreads int

	head atomic.Pointer[node[T]]
	_    [2*pad.CacheLine - 8]byte
	tail atomic.Pointer[node[T]]
	_    [2*pad.CacheLine - 8]byte

	state []pad.PointerSlot[opDesc[T]]

	hpNode *hazard.Domain[node[T]]
	hpDesc *hazard.Domain[opDesc[T]]

	nodePool *qrt.Pool[node[T]]
	descPool *qrt.Pool[opDesc[T]]

	rt *qrt.Runtime
}

// Option configures a Queue.
type Option func(*config)

type config struct {
	maxThreads int
	pooling    bool
}

// WithMaxThreads sets the registered-thread bound.
func WithMaxThreads(n int) Option { return func(c *config) { c.maxThreads = n } }

// WithPooling recycles reclaimed nodes and descriptors through per-thread
// pools (default true). Disable to reproduce the original allocate-always
// behaviour when measuring allocation churn.
func WithPooling(on bool) Option { return func(c *config) { c.pooling = on } }

// New creates a KP queue.
func New[T any](opts ...Option) *Queue[T] {
	cfg := config{maxThreads: qrt.DefaultMaxThreads, pooling: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxThreads <= 0 {
		panic(fmt.Sprintf("kpq: maxThreads must be positive, got %d", cfg.maxThreads))
	}
	// A zero-capacity pool never retains anything, reproducing the
	// original allocate-always behaviour when pooling is disabled.
	cap := poolCap
	if !cfg.pooling {
		cap = 0
	}
	q := &Queue[T]{
		maxThreads: cfg.maxThreads,
		state:      make([]pad.PointerSlot[opDesc[T]], cfg.maxThreads),
		nodePool:   qrt.NewPool[node[T]](cfg.maxThreads, cap),
		descPool:   qrt.NewPool[opDesc[T]](cfg.maxThreads, cap),
		rt:         qrt.New(cfg.maxThreads),
	}
	q.hpNode = hazard.New[node[T]](cfg.maxThreads, numNodeH, q.recycleNode, hazard.WithActiveSet(q.rt))
	q.hpDesc = hazard.New[opDesc[T]](cfg.maxThreads, numDescH, q.recycleDesc, hazard.WithActiveSet(q.rt))
	// Drain-on-release for both domains. Safe off the owning goroutine:
	// the node domain's CHP condition reads only atomics (item pointer).
	q.rt.OnRelease(func(slot int) {
		q.hpNode.DrainThread(slot)
		q.hpDesc.DrainThread(slot)
	})

	sentinel := new(node[T]) // item nil: already "taken", deletable once retired
	sentinel.enqTid = -1
	sentinel.deqTid.Store(idxNone)
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	for i := range q.state {
		d := new(opDesc[T])
		d.phase.Store(-1)
		q.state[i].P.Store(d)
	}
	return q
}

// MaxThreads returns the registered-thread bound.
func (q *Queue[T]) MaxThreads() int { return q.maxThreads }

// Runtime returns the queue's per-thread runtime.
func (q *Queue[T]) Runtime() *qrt.Runtime { return q.rt }

// AllocStats reports cumulative descriptor and node heap allocations.
func (q *Queue[T]) AllocStats() (descs, nodes int64) {
	descs, _, _ = q.descPool.Stats()
	nodes, _, _ = q.nodePool.Stats()
	return descs, nodes
}

// AccountInto appends both hazard domains and both pools to s (the
// account.Source contract).
func (q *Queue[T]) AccountInto(s *account.Snapshot) {
	s.Hazard = append(s.Hazard,
		account.CaptureHazard("nodes", q.hpNode),
		account.CaptureHazard("descs", q.hpDesc))
	s.Pools = append(s.Pools,
		account.CapturePool("nodes", q.nodePool),
		account.CapturePool("descs", q.descPool))
}

const poolCap = 512

func (q *Queue[T]) recycleNode(threadID int, nd *node[T]) {
	q.nodePool.Put(threadID, nd)
}

func (q *Queue[T]) recycleDesc(threadID int, d *opDesc[T]) {
	q.descPool.Put(threadID, d)
}

func (q *Queue[T]) allocNode(threadID int, item *T) *node[T] {
	nd := q.nodePool.Get(threadID)
	if nd == nil {
		nd = new(node[T])
		q.nodePool.NoteAlloc()
	}
	nd.item.Store(item)
	nd.enqTid = int32(threadID)
	nd.deqTid.Store(idxNone)
	nd.next.Store(nil)
	return nd
}

func (q *Queue[T]) allocDesc(threadID int, phase int64, pending, enqueue bool, nd *node[T]) *opDesc[T] {
	d := q.descPool.Get(threadID)
	if d == nil {
		d = new(opDesc[T])
		q.descPool.NoteAlloc()
	}
	d.phase.Store(phase)
	d.pending.Store(pending)
	d.enqueue.Store(enqueue)
	d.node.Store(nd)
	return d
}

// maxPhase scans the active state slots for the largest announced phase.
// Reads are validated against the slot (one retry) so a pooled-descriptor
// reuse cannot leak a phase from a different role; a stale-but-validated
// phase only affects helping priority, never safety. Restricting the scan
// to active slots is safe for the same reason: a slot that has never been
// active still holds its initial phase -1 descriptor, and a released
// slot's stale phase could at worst have raised our announcement — which
// only affects helping priority.
func (q *Queue[T]) maxPhase() int64 {
	maxp := int64(-1)
	q.rt.ForActive(0, q.rt.ActiveLimit(), func(i int) bool {
		d := q.state[i].P.Load()
		ph := d.phase.Load()
		if q.state[i].P.Load() != d {
			d = q.state[i].P.Load()
			ph = d.phase.Load()
		}
		if ph > maxp {
			maxp = ph
		}
		return true
	})
	return maxp
}

func (q *Queue[T]) isStillPending(threadID int32, phase int64) bool {
	d := q.state[threadID].P.Load()
	return d.pending.Load() && d.phase.Load() <= phase
}

// installDesc publishes a new descriptor for the calling thread's own
// operation and retires the one it replaces.
func (q *Queue[T]) installDesc(threadID int, d *opDesc[T]) {
	old := q.state[threadID].P.Load()
	q.state[threadID].P.Store(d)
	q.hpDesc.Retire(threadID, old)
}

// casState replaces thread i's descriptor cur with next, retiring cur on
// success. The caller must have cur protected in hpDesc (the ABA window of
// the package comment).
func (q *Queue[T]) casState(helper int, i int32, cur, next *opDesc[T]) bool {
	if q.state[i].P.CompareAndSwap(cur, next) {
		q.hpDesc.Retire(helper, cur)
		return true
	}
	// next was built speculatively by the helper; it never became visible,
	// so it can go straight back to the helper's pool.
	q.recycleDesc(helper, next)
	return false
}

// Enqueue appends item. Wait-free: announce with a phase above every
// observed phase, then help until no longer pending.
func (q *Queue[T]) Enqueue(threadID int, item T) {
	qrt.CheckSlot(threadID, q.maxThreads)
	q.rt.EnsureActive(threadID)
	boxed := new(T)
	*boxed = item
	phase := q.maxPhase() + 1
	nd := q.allocNode(threadID, boxed)
	q.installDesc(threadID, q.allocDesc(threadID, phase, true, true, nd))
	// Fault point: the pending descriptor is installed but help() has
	// not run — a thread parked here relies on every other thread's
	// helping pass to complete its operation (KP's fairness mechanism).
	inject.Fire(inject.KPQInstall)
	q.help(threadID, phase)
	q.helpFinishEnq(threadID)
	q.hpNode.Clear(threadID)
	q.hpDesc.Clear(threadID)
}

// Dequeue removes the item at the head, or reports ok=false when empty.
func (q *Queue[T]) Dequeue(threadID int) (item T, ok bool) {
	qrt.CheckSlot(threadID, q.maxThreads)
	q.rt.EnsureActive(threadID)
	phase := q.maxPhase() + 1
	q.installDesc(threadID, q.allocDesc(threadID, phase, true, false, nil))
	inject.Fire(inject.KPQInstall)
	q.help(threadID, phase)
	q.helpFinishDeq(threadID)

	// Our completed descriptor's node field holds the node whose item we
	// own (nil for an empty-queue dequeue). The node may already be
	// retired — the §3.2 scenario — but CHP keeps it alive until the item
	// swap below, which both consumes the value and releases the node.
	d := q.state[threadID].P.Load()
	nd := d.node.Load()
	q.hpNode.Clear(threadID)
	q.hpDesc.Clear(threadID)
	if nd == nil {
		var zero T
		return zero, false
	}
	boxed := nd.item.Swap(nil)
	if boxed == nil {
		panic("kpq: dequeued node's item was already taken; ownership invariant violated")
	}
	return *boxed, true
}

// help makes every pending operation with phase <= phase complete before
// the caller's own operation can be considered stuck (KP's core fairness
// mechanism: the oldest announced phase is always being helped). Only
// active slots are visited: a descriptor becomes pending only after its
// owner entered the active set (Enqueue/Dequeue run EnsureActive before
// installDesc), and the caller's own slot is active, so every request
// that must be helped — including the caller's — is inside the scan.
func (q *Queue[T]) help(threadID int, phase int64) {
	q.rt.ForActive(0, q.rt.ActiveLimit(), func(i int) bool {
		d := q.hpDesc.ProtectPtr(hpDesc, threadID, q.state[i].P.Load())
		if q.state[i].P.Load() != d {
			// Slot changed mid-read: its operation is being driven by its
			// owner right now; helping it is not needed for our progress.
			return true
		}
		if !d.pending.Load() || d.phase.Load() > phase {
			return true
		}
		if d.enqueue.Load() {
			q.helpEnq(threadID, int32(i), phase)
		} else {
			q.helpDeq(threadID, int32(i), phase)
		}
		return true
	})
}

// helpEnq drives thread i's pending enqueue until it is linked into the
// list (the tail swing is completed by helpFinishEnq).
func (q *Queue[T]) helpEnq(helper int, i int32, phase int64) {
	for iter := 0; q.isStillPending(i, phase); iter++ {
		if iter == hardIterCap {
			panic("kpq: helpEnq exceeded hard cap; queue invariant violated")
		}
		last := q.hpNode.ProtectPtr(hpTail, helper, q.tail.Load())
		if last != q.tail.Load() {
			continue
		}
		next := last.next.Load()
		if next != nil {
			q.helpFinishEnq(helper)
			continue
		}
		if !q.isStillPending(i, phase) {
			return
		}
		d := q.hpDesc.ProtectPtr(hpDesc, helper, q.state[i].P.Load())
		if q.state[i].P.Load() != d || !d.pending.Load() || !d.enqueue.Load() {
			continue
		}
		nd := d.node.Load()
		if nd == nil {
			continue
		}
		if last.next.CompareAndSwap(nil, nd) {
			q.helpFinishEnq(helper)
			return
		}
	}
}

// helpFinishEnq completes the two-step enqueue: mark the owner's
// descriptor not pending, then swing the tail.
func (q *Queue[T]) helpFinishEnq(helper int) {
	last := q.hpNode.ProtectPtr(hpTail, helper, q.tail.Load())
	if last != q.tail.Load() {
		return
	}
	next := q.hpNode.ProtectPtr(hpNext, helper, last.next.Load())
	if last != q.tail.Load() || next == nil {
		return
	}
	i := next.enqTid
	if i >= 0 {
		cur := q.hpDesc.ProtectPtr(hpDesc, helper, q.state[i].P.Load())
		if q.state[i].P.Load() == cur && last == q.tail.Load() && cur.node.Load() == next {
			if cur.pending.Load() {
				nd := q.allocDesc(helper, cur.phase.Load(), false, true, next)
				q.casState(helper, i, cur, nd)
			}
		}
	}
	q.tail.CompareAndSwap(last, next)
}

// helpDeq drives thread i's pending dequeue: bind it to the current head,
// claim the head's successor via deqTid, and finish.
func (q *Queue[T]) helpDeq(helper int, i int32, phase int64) {
	for iter := 0; q.isStillPending(i, phase); iter++ {
		if iter == hardIterCap {
			panic("kpq: helpDeq exceeded hard cap; queue invariant violated")
		}
		first := q.hpNode.ProtectPtr(hpHead, helper, q.head.Load())
		if first != q.head.Load() {
			continue
		}
		last := q.tail.Load()
		next := q.hpNode.ProtectPtr(hpNext, helper, first.next.Load())
		if first != q.head.Load() {
			continue
		}
		if first == last {
			if next == nil {
				// Queue looks empty: complete the dequeue with node=nil.
				cur := q.hpDesc.ProtectPtr(hpDesc, helper, q.state[i].P.Load())
				if q.state[i].P.Load() != cur {
					continue
				}
				if last == q.tail.Load() && q.isStillPending(i, phase) {
					nd := q.allocDesc(helper, cur.phase.Load(), false, false, nil)
					q.casState(helper, i, cur, nd)
				}
				continue
			}
			// Tail is lagging behind a linked node; finish that enqueue.
			q.helpFinishEnq(helper)
			continue
		}
		// Non-empty: bind the request to this head so a successful claim
		// can be attributed even if we stall (KP's two-phase dequeue).
		cur := q.hpDesc.ProtectPtr(hpDesc, helper, q.state[i].P.Load())
		if q.state[i].P.Load() != cur {
			continue
		}
		if !q.isStillPending(i, phase) {
			return
		}
		if cur.node.Load() != first {
			nd := q.allocDesc(helper, cur.phase.Load(), true, false, first)
			if !q.casState(helper, i, cur, nd) {
				continue
			}
		}
		first.deqTid.CompareAndSwap(idxNone, i)
		q.helpFinishDeq(helper)
	}
}

// helpFinishDeq completes a claimed dequeue: publish the value node in the
// claimant's descriptor, swing the head, and retire the old head with the
// §3.2 conditional: it may be freed only after its own item was taken.
func (q *Queue[T]) helpFinishDeq(helper int) {
	first := q.hpNode.ProtectPtr(hpHead, helper, q.head.Load())
	if first != q.head.Load() {
		return
	}
	next := q.hpNode.ProtectPtr(hpNext, helper, first.next.Load())
	if first != q.head.Load() {
		return
	}
	i := first.deqTid.Load()
	if i == idxNone || next == nil {
		return
	}
	cur := q.hpDesc.ProtectPtr(hpDesc, helper, q.state[i].P.Load())
	if q.state[i].P.Load() == cur && first == q.head.Load() &&
		cur.pending.Load() && !cur.enqueue.Load() {
		// The completed descriptor carries the *value node* (the new
		// head), the §3.2 restructuring that lets the owner reach its
		// item through the state array after the head moves on.
		nd := q.allocDesc(helper, cur.phase.Load(), false, false, next)
		q.casState(helper, i, cur, nd)
	}
	// The head swing must be attempted even when the descriptor check
	// failed (the claim was already completed by another helper): the
	// owner's own call relies on it so that the head is guaranteed past
	// its bound node before Dequeue returns — otherwise the owner's next
	// dequeue could re-bind the same head and double-consume it.
	if q.head.CompareAndSwap(first, next) {
		retired := first
		q.hpNode.RetireCond(helper, retired, func() bool {
			return retired.item.Load() == nil
		})
	}
}

func (q *Queue[T]) checkTid(threadID int) {
	if threadID < 0 || threadID >= q.maxThreads {
		panic(fmt.Sprintf("kpq: thread id %d out of range [0,%d)", threadID, q.maxThreads))
	}
}
