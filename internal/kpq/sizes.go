package kpq

import "unsafe"

// SizeInfo reports the Table 4 figures for the KP queue: node size,
// descriptor size (the OpDesc stand-in — the paper charges Java's OpDesc
// at >= 80 bytes with object headers; Go's is leaner but allocated just
// as often), and the fixed per-thread footprint (one state-array entry).
func SizeInfo() (nodeBytes, descBytes, fixedPerThreadLogical uintptr) {
	return unsafe.Sizeof(node[uintptr]{}), unsafe.Sizeof(opDesc[uintptr]{}), unsafe.Sizeof(uintptr(0))
}
