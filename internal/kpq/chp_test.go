package kpq

// Tests specific to the §3.2 reclamation port: Conditional Hazard
// Pointers must keep a dequeued-but-not-yet-consumed node alive even
// after the head has moved past it, and release it once the owner takes
// the item.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestItemSurvivesHeadAdvance reconstructs the §3.2 scenario: thread A's
// dequeue is completed by helpers (its descriptor carries the value
// node), more dequeues by other threads advance the head far past that
// node, and only then does A read its item. With plain HP the node could
// be recycled in between; CHP must keep it intact.
func TestItemSurvivesHeadAdvance(t *testing.T) {
	const slots = 3
	q := New[int](WithMaxThreads(slots))
	for i := 0; i < 100; i++ {
		q.Enqueue(0, i)
	}
	// Thread 1 dequeues 0; thread 2 then churns 50 more dequeues and
	// re-enqueues, recycling nodes aggressively. Thread 1's value was
	// captured at its own dequeue return, so this validates end-to-end
	// that values delivered early are not corrupted by later churn. The
	// CHP-specific window (descriptor read after head advance) is
	// exercised millions of times by the concurrent stress tests; here we
	// assert the visible outcome exhaustively.
	v, ok := q.Dequeue(1)
	if !ok || v != 0 {
		t.Fatalf("first dequeue: got (%d,%v)", v, ok)
	}
	for i := 0; i < 50; i++ {
		vv, ok := q.Dequeue(2)
		if !ok || vv != i+1 {
			t.Fatalf("churn dequeue %d: got (%d,%v)", i, vv, ok)
		}
		q.Enqueue(2, 1000+i)
	}
}

// TestConditionHoldsNodes checks the CHP accounting directly: while a
// value node's item has not been swapped out, the node domain's backlog
// may hold it, and churn by other threads must not free it prematurely
// (premature freeing with pooling would corrupt items, caught by the
// checksum test below).
func TestConditionHoldsNodes(t *testing.T) {
	type pay struct{ a, b uint64 }
	const workers, per = 4, 2000
	q := New[pay](WithMaxThreads(workers * 2))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				x := uint64(w)<<32 | uint64(k)
				q.Enqueue(w, pay{a: x, b: ^x})
			}
		}(w)
	}
	var bad atomic.Int64
	var consumed atomic.Int64
	var cw sync.WaitGroup
	for w := 0; w < workers; w++ {
		cw.Add(1)
		go func(w int) {
			defer cw.Done()
			for consumed.Load() < int64(workers*per) {
				v, ok := q.Dequeue(workers + w)
				if !ok {
					runtime.Gosched()
					continue
				}
				if v.b != ^v.a {
					bad.Add(1)
				}
				consumed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	cw.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d corrupted payloads: node freed before its item was taken", bad.Load())
	}
}

// TestDescriptorChurnBounded: descriptor retire lists must not grow
// without bound under steady traffic (the HP domain reclaims them).
func TestDescriptorChurnBounded(t *testing.T) {
	q := New[int](WithMaxThreads(2))
	for i := 0; i < 20000; i++ {
		q.Enqueue(0, i)
		if _, ok := q.Dequeue(1); !ok {
			t.Fatalf("dequeue %d empty", i)
		}
	}
	if got, bound := q.hpDesc.Backlog(), q.hpDesc.BacklogBound(); got > bound {
		t.Fatalf("descriptor backlog %d exceeds bound %d", got, bound)
	}
	if got, bound := q.hpNode.Backlog(), q.hpNode.BacklogBound(); got > bound {
		t.Fatalf("node backlog %d exceeds bound %d", got, bound)
	}
}

// TestPoolingRoundTrip: with pooling on, steady-state traffic stops
// allocating new descriptors and nodes entirely.
func TestPoolingRoundTrip(t *testing.T) {
	q := New[int](WithMaxThreads(1))
	for i := 0; i < 1000; i++ {
		q.Enqueue(0, i)
		if v, ok := q.Dequeue(0); !ok || v != i {
			t.Fatalf("round %d: got (%d,%v)", i, v, ok)
		}
	}
	d1, n1 := q.AllocStats()
	for i := 0; i < 1000; i++ {
		q.Enqueue(0, i)
		if _, ok := q.Dequeue(0); !ok {
			t.Fatal("empty")
		}
	}
	d2, n2 := q.AllocStats()
	if d2-d1 > 50 || n2-n1 > 50 {
		t.Errorf("steady state still allocating: +%d descs, +%d nodes over 1000 pairs", d2-d1, n2-n1)
	}
}
