package xrand

import (
	"testing"
	"testing/quick"
)

func TestSplitMixDeterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitMixKnownValues(t *testing.T) {
	// Reference values for splitmix64 with seed 0 (from the public domain
	// reference implementation).
	s := NewSplitMix64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("value %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroDistinctStreams(t *testing.T) {
	a, b := NewXoshiro256(1), NewXoshiro256(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		x := NewXoshiro256(seed)
		for i := 0; i < 50; i++ {
			v := x.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewXoshiro256(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(7)
	for i := 0; i < 1000; i++ {
		v := x.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := NewXoshiro256(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRoughlyUniform(t *testing.T) {
	x := NewXoshiro256(123)
	const buckets, draws = 10, 100000
	var hist [buckets]int
	for i := 0; i < draws; i++ {
		hist[x.Intn(buckets)]++
	}
	for b, c := range hist {
		if c < draws/buckets*8/10 || c > draws/buckets*12/10 {
			t.Fatalf("bucket %d count %d outside 20%% of expected %d", b, c, draws/buckets)
		}
	}
}
