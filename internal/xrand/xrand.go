// Package xrand implements small, fast, deterministic pseudo-random number
// generators for workload generation.
//
// Benchmark workers each own an independent generator seeded from a
// splitmix64 stream, so runs are reproducible and there is no contention on
// a shared source (math/rand's global source takes a lock, which would
// perturb latency measurements).
package xrand

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// used directly for cheap per-worker streams and to seed Xoshiro256.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna: a fast,
// high-quality generator with 256 bits of state.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is derived from seed via
// splitmix64, per the authors' recommendation. A zero seed is valid.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Next returns the next 64-bit value in the stream.
func (x *Xoshiro256) Next() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free reduction is fine here: the
	// slight modulo bias of the plain reduction is irrelevant for workload
	// shuffling, but the multiply-shift form is also faster than %.
	return int((x.Next() >> 33) * uint64(n) >> 31)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
