package turnalt

import (
	"testing"
	"testing/quick"

	"turnqueue/internal/qtest"
	"turnqueue/internal/xrand"
)

func TestSequentialFIFO(t *testing.T) {
	qtest.RunSequentialFIFO(t, New[qtest.Item](4), 2000)
}

func TestEmptyDequeue(t *testing.T) {
	q := New[int](2)
	for i := 0; i < 10; i++ {
		if v, ok := q.Dequeue(0); ok {
			t.Fatalf("empty dequeue returned %d", v)
		}
	}
	q.Enqueue(1, 9)
	if v, ok := q.Dequeue(0); !ok || v != 9 {
		t.Fatalf("got (%d,%v), want (9,true)", v, ok)
	}
	if _, ok := q.Dequeue(1); ok {
		t.Fatal("queue should be empty again")
	}
}

func TestMPMCStress(t *testing.T) {
	per := 3000
	if testing.Short() {
		per = 500
	}
	for _, shape := range []struct{ p, c int }{{1, 1}, {2, 2}, {4, 4}, {6, 2}, {2, 6}} {
		q := New[qtest.Item](shape.p + shape.c)
		qtest.RunMPMC(t, q, qtest.Config{Producers: shape.p, Consumers: shape.c, PerProducer: per})
	}
}

func TestMPMCPairs(t *testing.T) {
	q := New[qtest.Item](8)
	qtest.RunMPMC(t, q, qtest.Config{Producers: 8, PerProducer: 2000, Mixed: true})
}

// TestQuickModel compares random single-threaded interleavings against a
// reference FIFO across rotating slots.
func TestQuickModel(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		const maxThreads = 4
		nOps := int(opsRaw % 400)
		q := New[int](maxThreads)
		var m []int
		rng := xrand.NewXoshiro256(seed)
		next := 0
		for i := 0; i < nOps; i++ {
			tid := rng.Intn(maxThreads)
			if rng.Intn(2) == 0 {
				q.Enqueue(tid, next)
				m = append(m, next)
				next++
			} else {
				gv, gok := q.Dequeue(tid)
				if len(m) == 0 {
					if gok {
						return false
					}
					continue
				}
				if !gok || gv != m[0] {
					return false
				}
				m = m[1:]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRollbackRace hammers the giveUp path: the queue hovers around
// empty, so dequeues constantly open, roll back, and occasionally get
// assigned mid-rollback. Exactly-once delivery must survive.
func TestRollbackRace(t *testing.T) {
	q := New[qtest.Item](4)
	qtest.RunMPMC(t, q, qtest.Config{Producers: 2, Consumers: 2, PerProducer: 5000})
}
