// Package turnalt implements the alternative Turn-queue dequeue design
// that §2.3 of the paper describes and rejects: instead of the deqself/
// deqhelp pair, a single `dequeuers` array of node pointers plus an
// atomic isRequest flag in every node. A request is open while the node
// currently parked in the thread's dequeuers entry has isRequest set;
// closing the request CASes the entry to the assigned node (whose
// isRequest is false by construction).
//
// The paper's objection, reproduced here so it can be measured (ablation
// X5): the consensus scan must dereference each scanned entry to read its
// isRequest flag, so searchNext needs a hazard-pointer publish+validate
// per entry — maxThreads extra seq-cst stores on the dequeue hot path —
// where the two-array design compares two pointers without dereferencing
// anything. BenchmarkAblationAltDequeue quantifies the difference.
//
// The enqueue side is identical to internal/core (the paper notes the two
// sides are independent); it is duplicated here so the package stands
// alone as a faithful rendition of the variant.
package turnalt

import (
	"fmt"
	"sync/atomic"

	"turnqueue/internal/account"
	"turnqueue/internal/hazard"
	"turnqueue/internal/pad"
	"turnqueue/internal/qrt"
)

// IdxNone marks an unassigned node, as in internal/core.
const IdxNone int32 = -1

const (
	hpTail = 0
	hpHead = 0
	hpNext = 1
	hpDeq  = 2
	hpScan = 3 // the extra slot this design pays for (§2.3)
	numHPs = 4
)

const hardIterCap = 1 << 22

// Node is the variant's queue node: Algorithm 1 plus the isRequest flag.
type Node[T any] struct {
	item      T
	enqTid    int32
	deqTid    atomic.Int32
	isRequest atomic.Bool
	next      atomic.Pointer[Node[T]]
}

func (n *Node[T]) reset(item T, tidx int32) {
	n.item = item
	n.enqTid = tidx
	n.deqTid.Store(IdxNone)
	n.isRequest.Store(false)
	n.next.Store(nil)
}

// Queue is the single-array Turn queue variant.
type Queue[T any] struct {
	maxThreads int

	head atomic.Pointer[Node[T]]
	_    [2*pad.CacheLine - 8]byte
	tail atomic.Pointer[Node[T]]
	_    [2*pad.CacheLine - 8]byte

	enqueuers []pad.PointerSlot[Node[T]]
	dequeuers []pad.PointerSlot[Node[T]]

	hp       *hazard.Domain[Node[T]]
	free     [][]*Node[T]
	rt *qrt.Runtime
}

// New creates the variant queue for up to maxThreads registered threads.
func New[T any](maxThreads int) *Queue[T] {
	if maxThreads <= 0 {
		panic(fmt.Sprintf("turnalt: maxThreads must be positive, got %d", maxThreads))
	}
	q := &Queue[T]{
		maxThreads: maxThreads,
		enqueuers:  make([]pad.PointerSlot[Node[T]], maxThreads),
		dequeuers:  make([]pad.PointerSlot[Node[T]], maxThreads),
		free:       make([][]*Node[T], maxThreads),
		rt:         qrt.New(maxThreads),
	}
	q.hp = hazard.New[Node[T]](maxThreads, numHPs, q.recycle, hazard.WithActiveSet(q.rt))
	// Drain-on-release, as in internal/core: flush a departing slot's
	// retire backlog while it still owns its free list.
	q.rt.OnRelease(func(slot int) { q.hp.DrainThread(slot) })
	sentinel := new(Node[T])
	sentinel.deqTid.Store(0)
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	for i := 0; i < maxThreads; i++ {
		// Each thread parks on a distinct dummy whose isRequest is false:
		// all requests start closed.
		q.dequeuers[i].P.Store(new(Node[T]))
	}
	return q
}

// MaxThreads returns the registered-thread bound.
func (q *Queue[T]) MaxThreads() int { return q.maxThreads }

// Runtime returns the queue's per-thread runtime.
func (q *Queue[T]) Runtime() *qrt.Runtime { return q.rt }

// AccountInto appends the hazard domain to s (the account.Source
// contract). The variant's free lists are plain slices, not a qrt.Pool,
// so only the hazard side is reported.
func (q *Queue[T]) AccountInto(s *account.Snapshot) {
	s.Hazard = append(s.Hazard, account.CaptureHazard("nodes", q.hp))
}

const poolCap = 256

func (q *Queue[T]) recycle(threadID int, nd *Node[T]) {
	var zero T
	nd.item = zero
	if len(q.free[threadID]) >= poolCap {
		return
	}
	q.free[threadID] = append(q.free[threadID], nd)
}

func (q *Queue[T]) alloc(threadID int, item T) *Node[T] {
	var nd *Node[T]
	if list := q.free[threadID]; len(list) > 0 {
		nd = list[len(list)-1]
		list[len(list)-1] = nil
		q.free[threadID] = list[:len(list)-1]
	} else {
		nd = new(Node[T])
	}
	nd.reset(item, int32(threadID))
	return nd
}

// Enqueue is Algorithm 2, identical to internal/core's version.
func (q *Queue[T]) Enqueue(threadID int, item T) {
	q.checkTid(threadID)
	q.rt.EnsureActive(threadID)
	myNode := q.alloc(threadID, item)
	q.enqueuers[threadID].P.Store(myNode)
	for i := 0; q.enqueuers[threadID].P.Load() != nil; i++ {
		if i == hardIterCap {
			panic("turnalt: enqueue helping loop exceeded hard cap")
		}
		ltail := q.hp.ProtectPtr(hpTail, threadID, q.tail.Load())
		if ltail != q.tail.Load() {
			continue
		}
		if q.enqueuers[ltail.enqTid].P.Load() == ltail {
			q.enqueuers[ltail.enqTid].P.CompareAndSwap(ltail, nil)
		}
		if nodeToHelp := q.nextEnqRequest(int(ltail.enqTid)); nodeToHelp != nil {
			ltail.next.CompareAndSwap(nil, nodeToHelp)
		}
		lnext := ltail.next.Load()
		if lnext != nil {
			q.tail.CompareAndSwap(ltail, lnext)
		}
	}
	q.hp.Clear(threadID)
}

// Dequeue is the single-array variant of Algorithm 3: open by raising
// isRequest on the parked node, close by replacing the parked node with
// the assigned one.
// nextEnqRequest returns the first pending enqueue request after turn in
// turn order, visiting only active slots (every requester ran
// EnsureActive before publishing). Same iteration as internal/core.
func (q *Queue[T]) nextEnqRequest(turn int) *Node[T] {
	var found *Node[T]
	probe := func(idx int) bool {
		if nd := q.enqueuers[idx].P.Load(); nd != nil {
			found = nd
			return false
		}
		return true
	}
	q.rt.ForActive(turn+1, q.rt.ActiveLimit(), probe)
	if found == nil {
		q.rt.ForActive(0, turn+1, probe)
	}
	return found
}

func (q *Queue[T]) Dequeue(threadID int) (item T, ok bool) {
	q.checkTid(threadID)
	q.rt.EnsureActive(threadID)
	myReq := q.dequeuers[threadID].P.Load()
	myReq.isRequest.Store(true) // open our request
	for i := 0; q.dequeuers[threadID].P.Load() == myReq; i++ {
		if i == hardIterCap {
			panic("turnalt: dequeue helping loop exceeded hard cap")
		}
		lhead := q.hp.ProtectPtr(hpHead, threadID, q.head.Load())
		if lhead != q.head.Load() {
			continue
		}
		if lhead == q.tail.Load() {
			myReq.isRequest.Store(false) // roll the request back
			q.giveUp(myReq, threadID)
			if q.dequeuers[threadID].P.Load() != myReq {
				break // assigned despite the rollback: take the item
			}
			q.hp.Clear(threadID)
			var zero T
			return zero, false
		}
		lnext := q.hp.ProtectPtr(hpNext, threadID, lhead.next.Load())
		if lhead != q.head.Load() {
			continue
		}
		if q.searchNext(threadID, lhead, lnext) != IdxNone {
			q.casDeqAndHead(lhead, lnext, threadID)
		}
	}
	myNode := q.dequeuers[threadID].P.Load()
	lhead := q.hp.ProtectPtr(hpHead, threadID, q.head.Load())
	if lhead == q.head.Load() && myNode == lhead.next.Load() {
		q.head.CompareAndSwap(lhead, myNode)
	}
	q.hp.Clear(threadID)
	q.hp.Retire(threadID, myReq)
	return myNode.item, true
}

// searchNext runs the dequeue-side turn consensus. Unlike internal/core's
// two-array comparison, deciding whether entry idDeq holds an open
// request requires dereferencing the parked node to read isRequest — so
// each scanned entry costs a hazard-pointer publish and validation, the
// §2.3 overhead this package exists to exhibit.
func (q *Queue[T]) searchNext(threadID int, lhead, lnext *Node[T]) int32 {
	turn := int(lhead.deqTid.Load())
	// tryClaim inspects entry idDeq; true means an open request was found
	// (and the assignment CAS attempted), ending the scan. Only active
	// slots are visited — a dequeuer enters the active set before raising
	// isRequest — so the per-entry HP publish is paid O(live) times, not
	// O(maxThreads) times, though it remains the variant's defining cost.
	tryClaim := func(idDeq int) bool {
		nd := q.hp.ProtectPtr(hpScan, threadID, q.dequeuers[idDeq].P.Load())
		if q.dequeuers[idDeq].P.Load() != nd {
			return false // entry churned: that request was just served
		}
		if nd == nil || !nd.isRequest.Load() {
			return false // closed request
		}
		if lnext.deqTid.Load() == IdxNone {
			lnext.deqTid.CompareAndSwap(IdxNone, int32(idDeq))
		}
		return true
	}
	claimed := false
	probe := func(idx int) bool {
		if tryClaim(idx) {
			claimed = true
			return false
		}
		return true
	}
	q.rt.ForActive(turn+1, q.rt.ActiveLimit(), probe)
	if !claimed {
		q.rt.ForActive(0, turn+1, probe)
	}
	q.hp.ClearOne(hpScan, threadID)
	return lnext.deqTid.Load()
}

// casDeqAndHead publishes lnext to its assigned thread's dequeuers entry
// and then advances the head. Publication is unconditional on the
// isRequest flag: a rolled-back-but-claimed request must still receive
// its node (the owner's post-giveUp check picks it up), otherwise the
// claimed node's item would be unreachable — see the two-array version's
// Invariant 8/11 discussion.
func (q *Queue[T]) casDeqAndHead(lhead, lnext *Node[T], threadID int) {
	ldeqTid := lnext.deqTid.Load()
	if ldeqTid == int32(threadID) {
		q.dequeuers[ldeqTid].P.Store(lnext)
	} else {
		ldequeuer := q.hp.ProtectPtr(hpDeq, threadID, q.dequeuers[ldeqTid].P.Load())
		if ldequeuer != lnext && lhead == q.head.Load() {
			q.dequeuers[ldeqTid].P.CompareAndSwap(ldequeuer, lnext)
		}
	}
	q.head.CompareAndSwap(lhead, lnext)
}

// giveUp mirrors §2.3.1 for the single-array layout.
func (q *Queue[T]) giveUp(myReq *Node[T], threadID int) {
	lhead := q.head.Load()
	if q.dequeuers[threadID].P.Load() != myReq {
		return
	}
	if lhead == q.tail.Load() {
		return
	}
	q.hp.ProtectPtr(hpHead, threadID, lhead)
	if lhead != q.head.Load() {
		return
	}
	lnext := q.hp.ProtectPtr(hpNext, threadID, lhead.next.Load())
	if lhead != q.head.Load() {
		return
	}
	if q.searchNext(threadID, lhead, lnext) == IdxNone {
		lnext.deqTid.CompareAndSwap(IdxNone, int32(threadID))
	}
	q.casDeqAndHead(lhead, lnext, threadID)
}

func (q *Queue[T]) checkTid(threadID int) {
	if threadID < 0 || threadID >= q.maxThreads {
		panic(fmt.Sprintf("turnalt: thread id %d out of range [0,%d)", threadID, q.maxThreads))
	}
}
