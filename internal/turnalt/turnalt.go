// Package turnalt implements the alternative Turn-queue dequeue design
// that §2.3 of the paper describes and rejects: instead of the deqself/
// deqhelp pair, a single `dequeuers` array of node pointers plus an
// open-request mark carried on the parked node itself (consensus.IdxOpen
// in deqTid, the shared-Node encoding of the paper's isRequest flag). A
// request is open while the node currently parked in the thread's
// dequeuers entry carries the mark; closing the request CASes the entry
// to the assigned node.
//
// The paper's objection, reproduced here so it can be measured (ablation
// X5): the consensus scan must dereference each scanned entry to read
// its request mark, so searchNext needs a hazard-pointer publish+validate
// per entry — maxThreads extra seq-cst stores on the dequeue hot path —
// where the two-array design compares two pointers without dereferencing
// anything. BenchmarkAblationAltDequeue quantifies the difference.
//
// The enqueue side is identical to internal/core (the paper notes the two
// sides are independent) — since the consensus extraction it literally is
// the same consensus.Enq engine; the dequeue side is the consensus.AltDeq
// engine, the §2.3 variant's one implementation.
package turnalt

import (
	"fmt"

	"turnqueue/internal/account"
	"turnqueue/internal/consensus"
	"turnqueue/internal/hazard"
	"turnqueue/internal/qrt"
)

// IdxNone marks an unassigned node, as in internal/core.
const IdxNone = consensus.IdxNone

const (
	hpTail = 0
	hpHead = 0
	hpNext = 1
	hpDeq  = 2
	hpScan = 3 // the extra slot this design pays for (§2.3)
	numHPs = 4
)

// Node is the variant's queue node — the shared consensus node, whose
// deqTid doubles as the §2.3 isRequest flag via the IdxOpen sentinel.
type Node[T any] = consensus.Node[T]

// Queue is the single-array Turn queue variant.
type Queue[T any] struct {
	maxThreads int

	// enq is the shared enqueue-side engine (identical to internal/core);
	// deq is the single-array §2.3 dequeue variant, borrowing enq's tail
	// word for its emptiness check.
	enq consensus.Enq[T]
	deq consensus.AltDeq[T]

	hp   *hazard.Domain[Node[T]]
	free [][]*Node[T]
	rt   *qrt.Runtime
}

// New creates the variant queue for up to maxThreads registered threads.
func New[T any](maxThreads int) *Queue[T] {
	if maxThreads <= 0 {
		panic(fmt.Sprintf("turnalt: maxThreads must be positive, got %d", maxThreads))
	}
	q := &Queue[T]{
		maxThreads: maxThreads,
		free:       make([][]*Node[T], maxThreads),
		rt:         qrt.New(maxThreads),
	}
	q.hp = hazard.New[Node[T]](maxThreads, numHPs, q.recycle, hazard.WithActiveSet(q.rt))
	// Drain-on-release, as in internal/core: flush a departing slot's
	// retire backlog while it still owns its free list.
	q.rt.OnRelease(func(slot int) { q.hp.DrainThread(slot) })
	sentinel := consensus.NewSentinel[T]()
	q.enq.Init(q.rt, q.hp, hpTail, sentinel)
	q.deq.Init(q.rt, q.hp, hpHead, hpNext, hpDeq, hpScan, q.enq.TailPtr(), sentinel)
	return q
}

// MaxThreads returns the registered-thread bound.
func (q *Queue[T]) MaxThreads() int { return q.maxThreads }

// Runtime returns the queue's per-thread runtime.
func (q *Queue[T]) Runtime() *qrt.Runtime { return q.rt }

// AccountInto appends the hazard domain to s (the account.Source
// contract). The variant's free lists are plain slices, not a qrt.Pool,
// so only the hazard side is reported.
func (q *Queue[T]) AccountInto(s *account.Snapshot) {
	s.Hazard = append(s.Hazard, account.CaptureHazard("nodes", q.hp))
	s.EnqOverruns, s.DeqOverruns = q.OverrunStats()
}

// OverrunStats reports helping loops that exceeded the paper's
// maxThreads+1 structural bound.
func (q *Queue[T]) OverrunStats() (enq, deq int64) {
	return q.enq.Overruns(), q.deq.Overruns()
}

const poolCap = 256

func (q *Queue[T]) recycle(threadID int, nd *Node[T]) {
	nd.ClearItem()
	if len(q.free[threadID]) >= poolCap {
		return
	}
	q.free[threadID] = append(q.free[threadID], nd)
}

func (q *Queue[T]) alloc(threadID int, item T) *Node[T] {
	var nd *Node[T]
	if list := q.free[threadID]; len(list) > 0 {
		nd = list[len(list)-1]
		list[len(list)-1] = nil
		q.free[threadID] = list[:len(list)-1]
	} else {
		nd = new(Node[T])
	}
	nd.Reset(item, int32(threadID))
	return nd
}

// Enqueue is Algorithm 2, identical to internal/core's version — the
// same consensus.Enq engine.
func (q *Queue[T]) Enqueue(threadID int, item T) {
	q.checkTid(threadID)
	q.rt.EnsureActive(threadID)
	q.enq.Announce(threadID, q.alloc(threadID, item), false)
}

// Dequeue is the single-array variant of Algorithm 3 — see
// consensus.AltDeq for the annotated loop. The retired node is the
// previously parked request carrier, which left the array when the
// request closed.
func (q *Queue[T]) Dequeue(threadID int) (item T, ok bool) {
	q.checkTid(threadID)
	q.rt.EnsureActive(threadID)
	item, ok, prReq := q.deq.DequeueOne(threadID)
	q.hp.Clear(threadID)
	if ok {
		q.hp.Retire(threadID, prReq)
	}
	return item, ok
}

func (q *Queue[T]) checkTid(threadID int) {
	if threadID < 0 || threadID >= q.maxThreads {
		panic(fmt.Sprintf("turnalt: thread id %d out of range [0,%d)", threadID, q.maxThreads))
	}
}
