package hazard

import (
	"sync"
	"testing"
	"testing/quick"
)

type tnode struct{ v int }

func collectDomain(deleted *[]*tnode) (*Domain[tnode], func()) {
	var mu sync.Mutex
	d := New[tnode](4, 3, func(_ int, n *tnode) {
		mu.Lock()
		*deleted = append(*deleted, n)
		mu.Unlock()
	})
	return d, func() {}
}

func TestProtectBlocksReclaim(t *testing.T) {
	var deleted []*tnode
	d, _ := collectDomain(&deleted)
	n := &tnode{v: 1}
	d.ProtectPtr(0, 1, n) // thread 1 protects n
	d.Retire(0, n)        // thread 0 retires it
	if len(deleted) != 0 {
		t.Fatal("protected node was deleted")
	}
	d.Clear(1)
	d.Retire(0, &tnode{v: 2}) // triggers another scan (R=0)
	found := false
	for _, x := range deleted {
		if x == n {
			found = true
		}
	}
	if !found {
		t.Fatal("node not deleted after protection cleared")
	}
}

func TestRetireNilIsNoop(t *testing.T) {
	var deleted []*tnode
	d, _ := collectDomain(&deleted)
	d.Retire(0, nil)
	if r, _, _ := d.Stats(); r != 0 {
		t.Fatal("nil retire was counted")
	}
}

func TestUnprotectedReclaimImmediate(t *testing.T) {
	var deleted []*tnode
	d, _ := collectDomain(&deleted)
	n := &tnode{v: 1}
	d.Retire(0, n)
	if len(deleted) != 1 || deleted[0] != n {
		t.Fatalf("R=0 retire of unprotected node should delete immediately, got %v", deleted)
	}
}

// TestRetireBatchSingleScan pins RetireBatch's contract: one call
// reclaims every unprotected node, keeps every protected one, skips nil
// entries, counts each real entry exactly once, and — the point of the
// batch — runs only one scan for the whole set (observable at R=0 as
// the protected node surviving while every unprotected one dies in the
// same call).
func TestRetireBatchSingleScan(t *testing.T) {
	var deleted []*tnode
	d, _ := collectDomain(&deleted)
	pinned := &tnode{v: 99}
	d.ProtectPtr(0, 1, pinned)
	nodes := make([]*tnode, 0, 12)
	for i := 0; i < 10; i++ {
		nodes = append(nodes, &tnode{v: i})
	}
	nodes = append(nodes, nil, pinned)
	d.RetireBatch(0, nodes)
	if len(deleted) != 10 {
		t.Fatalf("deleted %d nodes, want the 10 unprotected ones", len(deleted))
	}
	for _, x := range deleted {
		if x == pinned {
			t.Fatal("protected node reclaimed by batched retire")
		}
	}
	if r, del, _ := d.Stats(); r != 11 || del != 10 {
		t.Fatalf("Stats retires=%d deletes=%d, want 11/10 (nil entry uncounted)", r, del)
	}
	if got := d.SlotBacklog(0); got != 1 {
		t.Fatalf("backlog %d after batch, want 1 (the pinned node)", got)
	}
	d.Clear(1)
	d.RetireBatch(0, []*tnode{{v: 100}})
	if got := d.SlotBacklog(0); got != 0 {
		t.Fatalf("backlog %d after protection cleared, want 0", got)
	}
}

// TestRetireBatchEmptyAndNil pins the no-op edges: an empty slice and a
// slice of nils neither count retires nor run a scan.
func TestRetireBatchEmptyAndNil(t *testing.T) {
	var deleted []*tnode
	d, _ := collectDomain(&deleted)
	d.RetireBatch(0, nil)
	d.RetireBatch(0, []*tnode{nil, nil})
	if r, _, _ := d.Stats(); r != 0 {
		t.Fatalf("retires = %d for empty batches, want 0", r)
	}
}

// TestRetireBatchMatchesSequential cross-checks the batched path against
// k sequential Retire calls under a random protection pattern: the set
// of reclaimed nodes must be identical (the snapshot-vs-linear
// equivalence at the batch cutover).
func TestRetireBatchMatchesSequential(t *testing.T) {
	run := func(protectMask uint16) (batch, seq []*tnode) {
		for _, batched := range []bool{true, false} {
			var deleted []*tnode
			d, _ := collectDomain(&deleted)
			nodes := make([]*tnode, 16)
			for i := range nodes {
				nodes[i] = &tnode{v: i}
			}
			hp := 0
			for i := range nodes {
				if protectMask&(1<<i) != 0 && hp < 3 {
					d.ProtectPtr(hp, 1, nodes[i])
					hp++
				}
			}
			if batched {
				d.RetireBatch(0, nodes)
				batch = append([]*tnode(nil), deleted...)
			} else {
				for _, n := range nodes {
					d.Retire(0, n)
				}
				seq = append([]*tnode(nil), deleted...)
			}
		}
		return batch, seq
	}
	for _, mask := range []uint16{0, 0xffff, 0x0101, 0x8001, 0x00f0} {
		batch, seq := run(mask)
		if len(batch) != len(seq) {
			t.Fatalf("mask %04x: batch reclaimed %d, sequential %d", mask, len(batch), len(seq))
		}
		got := map[int]bool{}
		for _, n := range batch {
			got[n.v] = true
		}
		for _, n := range seq {
			if !got[n.v] {
				t.Fatalf("mask %04x: sequential reclaimed %d but batch did not", mask, n.v)
			}
		}
	}
}

func TestRParameterBatches(t *testing.T) {
	var deleted []*tnode
	var mu sync.Mutex
	d := New[tnode](2, 1, func(_ int, n *tnode) {
		mu.Lock()
		deleted = append(deleted, n)
		mu.Unlock()
	}, WithR(5))
	for i := 0; i < 5; i++ {
		d.Retire(0, &tnode{v: i})
		if len(deleted) != 0 {
			t.Fatalf("scan ran before R threshold (retire %d)", i)
		}
	}
	d.Retire(0, &tnode{v: 5})
	if len(deleted) != 6 {
		t.Fatalf("scan after exceeding R should delete all 6, got %d", len(deleted))
	}
}

func TestConditionalHoldsUntilCondition(t *testing.T) {
	var deleted []*tnode
	d, _ := collectDomain(&deleted)
	n := &tnode{v: 1}
	released := false
	d.RetireCond(0, n, func() bool { return released })
	if len(deleted) != 0 {
		t.Fatal("conditional node deleted before condition")
	}
	d.Retire(0, &tnode{v: 2}) // rescan: condition still false
	if len(deleted) != 1 {
		t.Fatalf("expected only the unconditional node deleted, got %d", len(deleted))
	}
	released = true
	d.Retire(0, &tnode{v: 3}) // rescan: condition now true
	if len(deleted) != 3 {
		t.Fatalf("expected all 3 deleted after condition, got %d", len(deleted))
	}
}

func TestConditionalAlsoRespectsProtection(t *testing.T) {
	var deleted []*tnode
	d, _ := collectDomain(&deleted)
	n := &tnode{v: 1}
	d.ProtectPtr(1, 2, n)
	d.RetireCond(0, n, func() bool { return true })
	if len(deleted) != 0 {
		t.Fatal("protected conditional node deleted")
	}
	d.ClearOne(1, 2)
	d.DrainThread(0)
	if len(deleted) != 1 {
		t.Fatal("conditional node not deleted after clear")
	}
}

func TestHoldStatsSplitsHoldoutReasons(t *testing.T) {
	// The satellite-3 regression: a DrainThread that leaves entries behind
	// used to report only a count, so a kpq quiescence failure could not
	// say whether a reader was stalled or a condition owner had not acted.
	// HoldStats must attribute each survivor to its reason.
	var deleted []*tnode
	d, _ := collectDomain(&deleted)

	prot := &tnode{v: 1}
	d.ProtectPtr(0, 2, prot) // thread 2 still reads prot
	d.Retire(0, prot)

	released := false
	cond := &tnode{v: 2}
	d.RetireCond(0, cond, func() bool { return released })

	d.DrainThread(0)
	if len(deleted) != 0 {
		t.Fatalf("holdouts deleted: %v", deleted)
	}
	if c, p := d.HoldStats(); c != 1 || p != 1 {
		t.Fatalf("HoldStats() = (cond=%d, prot=%d), want (1, 1)", c, p)
	}

	// A node that is BOTH protected and condition-unmet counts as a
	// conditional holdout: the condition is the opaque case (a protection
	// eventually clears; an unmet condition needs its owner to act).
	both := &tnode{v: 3}
	d.ProtectPtr(1, 2, both)
	d.RetireCond(0, both, func() bool { return released })
	d.DrainThread(0)
	if c, p := d.HoldStats(); c != 2 || p != 1 {
		t.Fatalf("HoldStats() with both-reason holdout = (cond=%d, prot=%d), want (2, 1)", c, p)
	}

	// Each reason resolves independently and the split tracks it.
	released = true
	d.DrainThread(0)
	if c, p := d.HoldStats(); c != 0 || p != 2 {
		t.Fatalf("HoldStats() after condition met = (cond=%d, prot=%d), want (0, 2)", c, p)
	}
	d.Clear(2)
	d.DrainThread(0)
	if c, p := d.HoldStats(); c != 0 || p != 0 {
		t.Fatalf("HoldStats() at quiescence = (cond=%d, prot=%d), want (0, 0)", c, p)
	}
	if len(deleted) != 3 {
		t.Fatalf("deleted %d nodes at quiescence, want 3", len(deleted))
	}
}

func TestBacklogBound(t *testing.T) {
	// Even with every slot protecting a distinct node, the backlog stays
	// within BacklogBound — the paper's fault-resilience claim for HP.
	const threads, hps = 4, 3
	var deleted []*tnode
	var mu sync.Mutex
	d := New[tnode](threads, hps, func(_ int, n *tnode) {
		mu.Lock()
		deleted = append(deleted, n)
		mu.Unlock()
	})
	var protected []*tnode
	for tid := 0; tid < threads; tid++ {
		for i := 0; i < hps; i++ {
			n := &tnode{}
			protected = append(protected, n)
			d.ProtectPtr(i, tid, n)
			d.Retire(0, n)
		}
	}
	// Plenty of unprotected retires: they must all be reclaimed.
	for i := 0; i < 100; i++ {
		d.Retire(1, &tnode{})
	}
	if got, bound := d.Backlog(), d.BacklogBound(); got > bound {
		t.Fatalf("backlog %d exceeds bound %d", got, bound)
	}
	if len(deleted) < 100 {
		t.Fatalf("unprotected nodes not reclaimed: %d deleted", len(deleted))
	}
}

func TestConcurrentProtectRetire(t *testing.T) {
	// Readers protect and validate; a reclaimer retires. The deleter
	// asserts no node is deleted while any slot holds it.
	const threads = 4
	d := New[tnode](threads, 1, func(_ int, n *tnode) {
		n.v = -1 // poison: readers must never observe this through a validated protect
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var slot [threads]*tnode
	var mu sync.Mutex
	published := &tnode{v: 42}
	mu.Lock()
	slot[0] = published
	mu.Unlock()

	// Writer: replaces the published node, retiring the old one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			mu.Lock()
			old := slot[0]
			slot[0] = &tnode{v: 42}
			mu.Unlock()
			d.Retire(0, old)
		}
		close(stop)
	}()
	for r := 1; r < threads; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				n := slot[0]
				mu.Unlock()
				d.ProtectPtr(0, r, n)
				mu.Lock()
				still := slot[0] == n
				mu.Unlock()
				if still {
					if n.v != 42 {
						t.Errorf("validated node observed poisoned (v=%d): reclaimed while protected", n.v)
						return
					}
				}
				d.Clear(r)
			}
		}(r)
	}
	wg.Wait()
}

func TestQuickProtectedNeverDeleted(t *testing.T) {
	f := func(idx uint8, tid uint8) bool {
		d := New[tnode](8, 4, func(_ int, n *tnode) { n.v = -1 })
		n := &tnode{v: 7}
		d.ProtectPtr(int(idx%4), int(tid%8), n)
		d.Retire(int((tid+1)%8), n)
		return n.v == 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	cases := []func(){
		func() { New[tnode](0, 1, func(int, *tnode) {}) },
		func() { New[tnode](1, 0, func(int, *tnode) {}) },
		func() { New[tnode](1, 1, nil) },
		func() { New[tnode](1, 1, func(int, *tnode) {}, WithR(-1)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// fakeActive is a test ActiveSet: a plain bool mask with the linear-scan
// reference semantics of qrt.Runtime's bitmap.
type fakeActive struct{ bits []bool }

func (f *fakeActive) ActiveLimit() int {
	limit := 0
	for i, b := range f.bits {
		if b {
			limit = i + 1
		}
	}
	return limit
}

func (f *fakeActive) ActiveWord(w int) uint64 {
	var word uint64
	for b := 0; b < 64; b++ {
		if s := w<<6 + b; s < len(f.bits) && f.bits[s] {
			word |= uint64(1) << uint(b)
		}
	}
	return word
}

// TestBatchedScanReclaimsUnprotectedSuffix pins the R>0 sorted-snapshot
// path: after the threshold crossing, exactly the unprotected retirees
// are reclaimed and every protected one survives.
func TestBatchedScanReclaimsUnprotectedSuffix(t *testing.T) {
	const r = 7
	deleted := map[*tnode]bool{}
	d := New[tnode](4, 2, func(_ int, n *tnode) { deleted[n] = true }, WithR(r))
	var nodes []*tnode
	for i := 0; i <= r; i++ {
		nodes = append(nodes, &tnode{v: i})
	}
	// Protect the first three across different threads/slots; the rest
	// form the unprotected suffix.
	d.ProtectPtr(0, 1, nodes[0])
	d.ProtectPtr(1, 1, nodes[1])
	d.ProtectPtr(0, 3, nodes[2])
	for i, n := range nodes {
		d.Retire(0, n)
		if i < r && len(deleted) != 0 {
			t.Fatalf("batched scan ran before threshold (retire %d)", i)
		}
	}
	for i, n := range nodes {
		want := i >= 3
		if deleted[n] != want {
			t.Fatalf("node %d: deleted=%v, want %v", i, deleted[n], want)
		}
	}
	// Releasing the protections and retiring once more reclaims the rest.
	d.Clear(1)
	d.Clear(3)
	for i := 0; i <= r; i++ {
		d.Retire(0, &tnode{v: 100 + i})
	}
	for i, n := range nodes {
		if !deleted[n] {
			t.Fatalf("node %d not reclaimed after protections cleared", i)
		}
	}
}

// TestSnapshotAgreesWithLinearScan cross-checks the R>0 sorted-snapshot
// membership test against the R=0 linear probe on randomized
// protect/clear interleavings: for a quiescent matrix the two must
// classify every candidate identically.
func TestSnapshotAgreesWithLinearScan(t *testing.T) {
	const threads, hps = 8, 3
	for _, act := range []*fakeActive{nil, {bits: make([]bool, threads)}} {
		opts := []Option{WithR(4)}
		if act != nil {
			for i := range act.bits {
				act.bits[i] = true
			}
			opts = append(opts, WithActiveSet(act))
		}
		d := New[tnode](threads, hps, func(int, *tnode) {}, opts...)
		pool := make([]*tnode, 40)
		for i := range pool {
			pool[i] = &tnode{v: i}
		}
		lcg := uint64(1)
		rnd := func(n int) int {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			return int(lcg>>33) % n
		}
		for round := 0; round < 200; round++ {
			tid, idx := rnd(threads), rnd(hps)
			switch rnd(3) {
			case 0:
				d.ProtectPtr(idx, tid, pool[rnd(len(pool))])
			case 1:
				d.ClearOne(idx, tid)
			case 2:
				d.Clear(tid)
			}
			snap := d.snapshot(0)
			for _, n := range pool {
				if got, want := snapContains(snap, n), d.protected(n); got != want {
					t.Fatalf("round %d: snapshot says %v, linear scan says %v", round, got, want)
				}
			}
		}
	}
}

// TestActiveSetFiltersScans pins the WithActiveSet contract from the
// scanner's side: protections in active rows block reclamation in both
// scan flavours, and rows outside the set are not consulted.
func TestActiveSetFiltersScans(t *testing.T) {
	for _, r := range []int{0, 2} {
		act := &fakeActive{bits: make([]bool, 8)}
		deleted := map[*tnode]bool{}
		d := New[tnode](8, 1, func(_ int, n *tnode) { deleted[n] = true }, WithR(r), WithActiveSet(act))

		act.bits[2] = true
		held := &tnode{v: 1}
		d.ProtectPtr(0, 2, held) // active row: must block reclamation
		stale := &tnode{v: 2}
		d.ProtectPtr(0, 5, stale) // row 5 inactive: invisible to scans

		retire := func(nodes ...*tnode) {
			for _, n := range nodes {
				d.Retire(0, n)
			}
			for d.Backlog() > 0 && len(deleted) == 0 {
				d.Retire(0, &tnode{v: -1}) // push past the R threshold
			}
		}
		retire(held, stale)
		if deleted[held] {
			t.Fatalf("R=%d: protection in active row ignored", r)
		}
		if !deleted[stale] {
			t.Fatalf("R=%d: protection in inactive row blocked reclamation", r)
		}

		// Activating a row makes its protections visible to later scans.
		act.bits[5] = true
		n := &tnode{v: 3}
		d.ProtectPtr(0, 5, n)
		d.Retire(0, n)
		d.Retire(0, &tnode{v: -2})
		d.Retire(0, &tnode{v: -3})
		if deleted[n] {
			t.Fatalf("R=%d: protection in newly active row ignored", r)
		}
	}
}
