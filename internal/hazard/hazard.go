// Package hazard implements the paper's wait-free bounded Hazard Pointers
// (§3.1) and the Conditional Hazard Pointers variant (§3.2).
//
// A Domain owns a matrix of hazard-pointer slots, maxThreads rows by
// numHPs columns, plus one retire list per thread. The three operations
// mirror the paper's API exactly:
//
//	ProtectPtr(index, tid, node) — publish node in the thread's slot index
//	Clear(tid)                   — null all of the thread's slots
//	Retire(tid, node)            — add node to the thread's retire list and
//	                               scan: delete every retired node that no
//	                               slot protects
//
// Wait-freedom: ProtectPtr is a single store. The paper's Algorithm 5
// observes that the usual load-store-load *loop* makes protection only
// lock-free; the wait-free discipline is a single load-store-load sequence
// whose failed validation advances the enclosing algorithm's bounded loop
// instead of retrying in place. That discipline belongs to the caller —
// this package supplies the store, the caller revalidates and `continue`s.
// Retire is wait-free bounded: one pass over the retire list, each entry
// checked against the O(maxThreads·numHPs) slot matrix, no retries.
//
// The R parameter (Michael '04, figure 2) sets how large the retire list
// may grow before a scan. The paper chooses R=0 — scan on every retire —
// to minimize dequeue latency; that is the default here, and the ablation
// benchmark X1 sweeps it.
//
// Reclamation under a GC: Go's collector would free retired nodes on its
// own, which hides exactly the bugs hazard pointers exist to prevent. The
// Domain therefore hands each reclaimable node to a caller-supplied deleter
// which typically recycles it through a node pool, making premature
// reclamation observable as real ABA corruption (see internal/core).
package hazard

import (
	"fmt"
	"sync/atomic"

	"turnqueue/internal/pad"
)

// Domain is a hazard-pointer domain for nodes of type T. A Domain is
// typically embedded one-per-queue-instance, exactly like the `hp` member
// of the paper's queue classes.
type Domain[T any] struct {
	maxThreads int
	numHPs     int
	rParam     int
	deleter    func(tid int, node *T)

	// hp is the slot matrix, row-major: slot (tid, i) lives at
	// hp[tid*numHPs+i]. Each slot is padded to its own cache-line pair, so
	// one thread's publishes never invalidate another thread's slots.
	hp []pad.PointerSlot[T]

	// retired[tid] is owned exclusively by thread tid; no synchronization
	// is needed to mutate it. Stats counters are atomic only so tests and
	// the reclaim experiment can read them from other goroutines.
	retired [][]conditional[T]

	retireCalls  pad.Int64Slot
	deleteCalls  pad.Int64Slot
	maxBacklogSz pad.Int64Slot
}

// conditional pairs a retired node with its deletion condition; nil cond
// means unconditional (plain HP retire).
type conditional[T any] struct {
	node *T
	cond func() bool
}

// Option configures a Domain.
type Option func(*config)

type config struct {
	rParam int
}

// WithR sets the R scan threshold: a scan runs only when the retire list
// holds more than r entries. The paper uses R=0 (scan every retire) to keep
// dequeue latency minimal; larger values batch scans at the cost of a
// larger unreclaimed backlog (still bounded by r + maxThreads·numHPs).
func WithR(r int) Option {
	return func(c *config) {
		if r < 0 {
			panic(fmt.Sprintf("hazard: negative R parameter %d", r))
		}
		c.rParam = r
	}
}

// New creates a Domain for maxThreads threads with numHPs hazard-pointer
// slots per thread. deleter receives every node whose reclamation the scan
// proves safe; it must not be nil (use a no-op to lean on the GC).
func New[T any](maxThreads, numHPs int, deleter func(tid int, node *T), opts ...Option) *Domain[T] {
	if maxThreads <= 0 || numHPs <= 0 {
		panic(fmt.Sprintf("hazard: invalid dimensions %d x %d", maxThreads, numHPs))
	}
	if deleter == nil {
		panic("hazard: nil deleter")
	}
	cfg := config{rParam: 0}
	for _, o := range opts {
		o(&cfg)
	}
	return &Domain[T]{
		maxThreads: maxThreads,
		numHPs:     numHPs,
		rParam:     cfg.rParam,
		deleter:    deleter,
		hp:         make([]pad.PointerSlot[T], maxThreads*numHPs),
		retired:    make([][]conditional[T], maxThreads),
	}
}

// MaxThreads returns the thread bound of the domain.
func (d *Domain[T]) MaxThreads() int { return d.maxThreads }

// NumHPs returns the number of slots per thread.
func (d *Domain[T]) NumHPs() int { return d.numHPs }

func (d *Domain[T]) slot(tid, index int) *atomic.Pointer[T] {
	return &d.hp[tid*d.numHPs+index].P
}

// ProtectPtr publishes node in slot index of thread tid and returns node,
// matching the paper's hp.protectPtr(kHp..., ptr) signature so call sites
// read the same as Algorithm 2/3. The caller must re-validate the source
// shared variable after the call; on mismatch it advances its own loop.
func (d *Domain[T]) ProtectPtr(index, tid int, node *T) *T {
	d.slot(tid, index).Store(node)
	return node
}

// Clear nulls every slot of thread tid, the paper's hp.clear(). Called on
// every return path of enqueue() and dequeue().
func (d *Domain[T]) Clear(tid int) {
	for i := 0; i < d.numHPs; i++ {
		d.slot(tid, i).Store(nil)
	}
}

// ClearOne nulls a single slot of thread tid.
func (d *Domain[T]) ClearOne(index, tid int) {
	d.slot(tid, index).Store(nil)
}

// Retire adds node to thread tid's retire list and, when the list exceeds
// the R threshold, scans the slot matrix and deletes every retired node no
// slot protects. Passing nil is a no-op so call sites need not special-case
// "nothing to retire yet" (the Turn queue's first dequeue retires the
// initial deqself dummy only once a real node takes its place).
func (d *Domain[T]) Retire(tid int, node *T) {
	if node == nil {
		return
	}
	d.retireOne(tid, conditional[T]{node: node})
}

// RetireCond is the Conditional Hazard Pointers retire (§3.2): node is
// deleted only once (a) no hazard-pointer slot protects it AND (b) cond()
// reports true. The KP queue uses this for nodes that remain reachable
// through the state array after the head has advanced — cond there is
// "the node's item slot has been nulled by the dequeuer that consumed it".
func (d *Domain[T]) RetireCond(tid int, node *T, cond func() bool) {
	if node == nil {
		return
	}
	if cond == nil {
		panic("hazard: RetireCond with nil condition; use Retire")
	}
	d.retireOne(tid, conditional[T]{node: node, cond: cond})
}

func (d *Domain[T]) retireOne(tid int, c conditional[T]) {
	d.retireCalls.V.Add(1)
	d.retired[tid] = append(d.retired[tid], c)
	if len(d.retired[tid]) > d.rParam {
		d.scan(tid)
	}
}

// scan is the reclamation pass: one bounded sweep of thread tid's retire
// list against the full slot matrix. O(len(list) · maxThreads · numHPs)
// steps, no loops that depend on other threads' actions — wait-free
// bounded, which is the property Table 2's first column claims.
func (d *Domain[T]) scan(tid int) {
	list := d.retired[tid]
	kept := list[:0]
	for _, c := range list {
		if (c.cond == nil || c.cond()) && !d.protected(c.node) {
			d.deleteCalls.V.Add(1)
			d.deleter(tid, c.node)
			continue
		}
		kept = append(kept, c)
	}
	// Null the tail so dropped entries do not pin nodes in the backing
	// array (the deleter may have recycled them into a pool).
	for i := len(kept); i < len(list); i++ {
		list[i] = conditional[T]{}
	}
	d.retired[tid] = kept
	if n := int64(len(kept)); n > d.maxBacklogSz.V.Load() {
		d.maxBacklogSz.V.Store(n)
	}
}

// protected reports whether any slot in the matrix currently holds node.
func (d *Domain[T]) protected(node *T) bool {
	for i := range d.hp {
		if d.hp[i].P.Load() == node {
			return true
		}
	}
	return false
}

// Protected reports whether node is currently published in any slot.
// Exposed for tests and assertions only; the answer may be stale.
func (d *Domain[T]) Protected(node *T) bool { return d.protected(node) }

// Backlog returns the current total number of retired-but-not-deleted
// nodes across all threads. Used by the reclaim experiment to show the HP
// backlog stays bounded while a thread is stalled.
func (d *Domain[T]) Backlog() int {
	n := 0
	for tid := range d.retired {
		n += len(d.retired[tid])
	}
	return n
}

// Stats reports cumulative retire and delete counts and the largest
// per-thread backlog observed at scan time.
func (d *Domain[T]) Stats() (retires, deletes, maxBacklog int64) {
	return d.retireCalls.V.Load(), d.deleteCalls.V.Load(), d.maxBacklogSz.V.Load()
}

// DrainThread force-scans thread tid's retire list. Callers use it when a
// thread unregisters, so its backlog does not linger until the next retire.
// Entries that are still protected or whose condition is unmet remain.
func (d *Domain[T]) DrainThread(tid int) {
	d.scan(tid)
}

// BacklogBound returns the theoretical maximum number of unreclaimed nodes:
// every slot may protect one distinct node and each thread may hold R
// pending entries plus conditional holdouts. For plain HP with R=0 this is
// maxThreads·numHPs + maxThreads, the bound the paper's §3 argues makes HP
// (unlike epochs) fault-resilient.
func (d *Domain[T]) BacklogBound() int {
	return d.maxThreads*d.numHPs + d.maxThreads*(d.rParam+1)
}
