// Package hazard implements the paper's wait-free bounded Hazard Pointers
// (§3.1) and the Conditional Hazard Pointers variant (§3.2).
//
// A Domain owns a matrix of hazard-pointer slots, maxThreads rows by
// numHPs columns, plus one retire list per thread. The three operations
// mirror the paper's API exactly:
//
//	ProtectPtr(index, tid, node) — publish node in the thread's slot index
//	Clear(tid)                   — null all of the thread's slots
//	Retire(tid, node)            — add node to the thread's retire list and
//	                               scan: delete every retired node that no
//	                               slot protects
//
// Wait-freedom: ProtectPtr is a single store. The paper's Algorithm 5
// observes that the usual load-store-load *loop* makes protection only
// lock-free; the wait-free discipline is a single load-store-load sequence
// whose failed validation advances the enclosing algorithm's bounded loop
// instead of retrying in place. That discipline belongs to the caller —
// this package supplies the store, the caller revalidates and `continue`s.
// Retire is wait-free bounded: one pass over the retire list, each entry
// checked against the O(maxThreads·numHPs) slot matrix, no retries.
//
// The R parameter (Michael '04, figure 2) sets how large the retire list
// may grow before a scan. The paper chooses R=0 — scan on every retire —
// to minimize dequeue latency; that is the default here, and the ablation
// benchmark X1 sweeps it.
//
// Scan cost and the active-slot set: a Domain built with WithActiveSet
// restricts both scan flavours to rows whose slots are currently
// registered (qrt.Runtime's occupancy bitmap). With R=0 the per-retire
// scan checks only active rows instead of the full maxThreads×numHPs
// matrix; with R>0 the batched scan snapshots the non-nil pointers of
// active rows once, sorts them, and resolves the whole retire list by
// binary search (Michael '04's amortized discipline). Skipping an
// inactive row is safe for the same reason skipping a nil slot is: a
// protection can only be published through an acquired slot, the
// occupancy bit is set before Acquire returns, and a late protection of
// a retired node never validates (the node left the shared structure
// before retire). Without WithActiveSet both paths degrade to the full
// matrix.
//
// Reclamation under a GC: Go's collector would free retired nodes on its
// own, which hides exactly the bugs hazard pointers exist to prevent. The
// Domain therefore hands each reclaimable node to a caller-supplied deleter
// which typically recycles it through a node pool, making premature
// reclamation observable as real ABA corruption (see internal/core).
package hazard

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
	"unsafe"

	"turnqueue/internal/account"
	"turnqueue/internal/inject"
	"turnqueue/internal/pad"
	"turnqueue/internal/reclaim"
)

// ActiveSet is the slot-occupancy view a Domain scans with; implemented
// by qrt.Runtime. ActiveLimit bounds the populated row range (monotone
// high-water mark); ActiveWord(w) returns the occupancy bits of slots
// [w*64, w*64+64), so a full sweep costs one interface call per 64 rows.
// The contract the scans rely on: a slot is in the set before its thread
// can publish a protection, and leaves it only after the thread's last
// operation. Shared with the other backends via internal/reclaim.
type ActiveSet = reclaim.ActiveSet

// Domain is a hazard-pointer domain for nodes of type T. A Domain is
// typically embedded one-per-queue-instance, exactly like the `hp` member
// of the paper's queue classes.
type Domain[T any] struct {
	maxThreads int
	numHPs     int
	rParam     int
	deleter    func(tid int, node *T)
	active     ActiveSet // nil: scan the full matrix (paper-faithful)

	// hp is the slot matrix, row-major: slot (tid, i) lives at
	// hp[tid*numHPs+i]. Each slot is padded to its own cache-line pair, so
	// one thread's publishes never invalidate another thread's slots.
	hp []pad.PointerSlot[T]

	// retired[tid] is owned exclusively by thread tid; no synchronization
	// is needed to mutate it. Stats counters are atomic only so tests and
	// the reclaim experiment can read them from other goroutines.
	retired [][]conditional[T]

	// snap[tid] is thread tid's reusable buffer for the R>0 batched
	// scan's sorted hazard-pointer snapshot; owned like retired[tid].
	snap [][]uintptr

	// blen[tid] mirrors len(retired[tid]) atomically: written only by
	// the list's owner, readable from any goroutine, so the accounting
	// layer (internal/account) can snapshot per-slot backlogs mid-run
	// without racing the owner's slice mutations.
	blen []pad.Int64Slot

	// bcond/bprot[tid] split blen[tid] by holdout reason at the last
	// scan: entries kept because their RetireCond condition was unmet
	// vs entries kept because a slot still protects them. Without the
	// split a kpq VerifyQuiescent failure is opaque — "backlog 3" does
	// not say whether a reader is pinning nodes or a consumer never
	// nulled its item slot. Written by the owner at scan time only.
	bcond []pad.Int64Slot
	bprot []pad.Int64Slot

	retireCalls  pad.Int64Slot
	deleteCalls  pad.Int64Slot
	maxBacklogSz pad.Int64Slot
}

// conditional pairs a retired node with its deletion condition; nil cond
// means unconditional (plain HP retire).
type conditional[T any] struct {
	node *T
	cond func() bool
}

// snapCutover is the retire-list length above which a scan switches from
// the per-entry linear probe to the sorted-snapshot resolution even at
// R=0. Batched retires are the only R=0 path that stacks more than R+1
// entries before scanning.
const snapCutover = 4

// Option configures a Domain.
type Option func(*config)

type config struct {
	rParam int
	active ActiveSet
}

// The option constructors below must not inline into their callers.
// hazard, eras, and qsbr all export options with the same names over
// same-shaped but differently-laid-out config structs, and the queue
// constructors that consume them are generic: every importing package
// emits its own dupok copy of e.g. turnplus.New[shape], and when these
// constructors inline there, their returned closures become dupok
// symbols named by a per-function counter (New[shape].WithActiveSet.funcN).
// This image's go1.24.0 toolchain can number those closures differently
// in different packages' instantiations, and the linker dedups the
// symbols by name — so a New body from one package can be linked against
// a same-named closure body from another, silently calling, say, the
// eras closure (config offset 0x18) on a hazard config (24 bytes): a
// one-word heap overflow. go:noinline keeps each closure compiled
// exactly once, in this package, under a unique non-dupok symbol.

// WithR sets the R scan threshold: a scan runs only when the retire list
// holds more than r entries. The paper uses R=0 (scan every retire) to keep
// dequeue latency minimal; larger values batch scans at the cost of a
// larger unreclaimed backlog (still bounded by r + maxThreads·numHPs).
//
//go:noinline
func WithR(r int) Option {
	return func(c *config) {
		if r < 0 {
			panic(fmt.Sprintf("hazard: negative R parameter %d", r))
		}
		c.rParam = r
	}
}

// WithActiveSet restricts scans to rows whose slots the set reports
// active. Queues pass their qrt.Runtime so retire cost tracks live
// registration instead of the configured bound; the scan cadence (the R
// parameter) is unaffected, so the paper's R=0 scan-per-retire default
// keeps its behavior.
//
//go:noinline
func WithActiveSet(s ActiveSet) Option {
	return func(c *config) { c.active = s }
}

// New creates a Domain for maxThreads threads with numHPs hazard-pointer
// slots per thread. deleter receives every node whose reclamation the scan
// proves safe; it must not be nil (use a no-op to lean on the GC).
func New[T any](maxThreads, numHPs int, deleter func(tid int, node *T), opts ...Option) *Domain[T] {
	if maxThreads <= 0 || numHPs <= 0 {
		panic(fmt.Sprintf("hazard: invalid dimensions %d x %d", maxThreads, numHPs))
	}
	if deleter == nil {
		panic("hazard: nil deleter")
	}
	cfg := config{rParam: 0}
	for _, o := range opts {
		o(&cfg)
	}
	return &Domain[T]{
		maxThreads: maxThreads,
		numHPs:     numHPs,
		rParam:     cfg.rParam,
		deleter:    deleter,
		active:     cfg.active,
		hp:         make([]pad.PointerSlot[T], maxThreads*numHPs),
		retired:    make([][]conditional[T], maxThreads),
		snap:       make([][]uintptr, maxThreads),
		blen:       make([]pad.Int64Slot, maxThreads),
		bcond:      make([]pad.Int64Slot, maxThreads),
		bprot:      make([]pad.Int64Slot, maxThreads),
	}
}

// MaxThreads returns the thread bound of the domain.
func (d *Domain[T]) MaxThreads() int { return d.maxThreads }

// NumHPs returns the number of slots per thread.
func (d *Domain[T]) NumHPs() int { return d.numHPs }

// R returns the configured scan threshold (Michael '04's R parameter).
func (d *Domain[T]) R() int { return d.rParam }

func (d *Domain[T]) slot(tid, index int) *atomic.Pointer[T] {
	return &d.hp[tid*d.numHPs+index].P
}

// ProtectPtr publishes node in slot index of thread tid and returns node,
// matching the paper's hp.protectPtr(kHp..., ptr) signature so call sites
// read the same as Algorithm 2/3. The caller must re-validate the source
// shared variable after the call; on mismatch it advances its own loop.
func (d *Domain[T]) ProtectPtr(index, tid int, node *T) *T {
	d.slot(tid, index).Store(node)
	// Fault point: the window between protect-publish and the caller's
	// revalidation — a thread parked here holds a published protection
	// forever, pinning at most numHPs nodes (the §3 bound under test).
	inject.Fire(inject.HazardProtect)
	return node
}

// Protect is the reclaim.Reclaimer form of the load-store-load
// discipline: load *src, publish it in slot index, and validate that src
// still holds the same pointer. ok=false is the paper's failed
// validation — the caller advances its enclosing bounded loop rather
// than retrying here, which is what keeps protection wait-free.
func (d *Domain[T]) Protect(index, tid int, src *atomic.Pointer[T]) (*T, bool) {
	node := src.Load()
	d.slot(tid, index).Store(node)
	// Fault point: the window between protect-publish and revalidation —
	// a thread parked here holds a published protection forever, pinning
	// at most numHPs nodes (the §3 bound under test).
	inject.Fire(inject.HazardProtect)
	if src.Load() != node {
		return node, false
	}
	return node, true
}

// NoteAlloc is a no-op: hazard pointers carry no per-node state (only
// the eras backend stamps birth eras at allocation).
func (d *Domain[T]) NoteAlloc(int, *T) {}

// Clear nulls every slot of thread tid, the paper's hp.clear(). Called on
// every return path of enqueue() and dequeue().
func (d *Domain[T]) Clear(tid int) {
	for i := 0; i < d.numHPs; i++ {
		d.slot(tid, i).Store(nil)
	}
}

// ClearOne nulls a single slot of thread tid.
func (d *Domain[T]) ClearOne(index, tid int) {
	d.slot(tid, index).Store(nil)
}

// Retire adds node to thread tid's retire list and, when the list exceeds
// the R threshold, scans the slot matrix and deletes every retired node no
// slot protects. Passing nil is a no-op so call sites need not special-case
// "nothing to retire yet" (the Turn queue's first dequeue retires the
// initial deqself dummy only once a real node takes its place).
func (d *Domain[T]) Retire(tid int, node *T) {
	if node == nil {
		return
	}
	d.retireOne(tid, conditional[T]{node: node})
}

// RetireCond is the Conditional Hazard Pointers retire (§3.2): node is
// deleted only once (a) no hazard-pointer slot protects it AND (b) cond()
// reports true. The KP queue uses this for nodes that remain reachable
// through the state array after the head has advanced — cond there is
// "the node's item slot has been nulled by the dequeuer that consumed it".
func (d *Domain[T]) RetireCond(tid int, node *T, cond func() bool) {
	if node == nil {
		return
	}
	if cond == nil {
		panic("hazard: RetireCond with nil condition; use Retire")
	}
	d.retireOne(tid, conditional[T]{node: node, cond: cond})
}

// RetireBatch adds every non-nil node to thread tid's retire list and
// resolves the whole list with at most one scan, instead of the one
// scan per node the R=0 default would pay through k Retire calls. The
// counters move with one atomic add per call. A batch large enough to
// trip the snapshot cutover is resolved against one sorted snapshot of
// the live protections (the Michael '04 amortized scheme the R>0 path
// uses), so a k-node retire costs one matrix sweep plus k binary
// searches rather than k matrix sweeps.
//
// Backlog note: between the append and the scan the list transiently
// holds up to k extra entries; the scan runs before RetireBatch returns,
// so every bound VerifyQuiescent checks at quiescence is unaffected. A
// thread parked inside the HazardRetire fault window strands at most its
// own batch plus R entries — batch size is the caller's lever on that
// constant, not on the per-thread O(1) structure of the bound.
func (d *Domain[T]) RetireBatch(tid int, nodes []*T) {
	added := 0
	list := d.retired[tid]
	for _, n := range nodes {
		if n == nil {
			continue
		}
		list = append(list, conditional[T]{node: n})
		added++
	}
	if added == 0 {
		return
	}
	d.retired[tid] = list
	d.blen[tid].V.Store(int64(len(list)))
	d.retireCalls.V.Add(int64(added))
	inject.Fire(inject.HazardRetire)
	if len(list) > d.rParam {
		d.scan(tid)
	}
}

func (d *Domain[T]) retireOne(tid int, c conditional[T]) {
	d.retireCalls.V.Add(1)
	d.retired[tid] = append(d.retired[tid], c)
	d.blen[tid].V.Store(int64(len(d.retired[tid])))
	// Fault point: the node is on the retire list but the scan has not
	// run — a thread parked here strands at most its own R+1 entries.
	inject.Fire(inject.HazardRetire)
	if len(d.retired[tid]) > d.rParam {
		d.scan(tid)
	}
}

// scan is the reclamation pass: one bounded sweep of thread tid's retire
// list against the slot matrix — active rows only when an ActiveSet is
// configured, the full matrix otherwise. With R=0 each entry runs its
// own row sweep (O(len(list) · rows · numHPs) steps); with R>0 the
// whole list is resolved against one sorted snapshot of the live
// pointers (O(rows · numHPs + len(list) · log) steps, Michael '04's
// amortized scheme). Either way there are no loops that depend on other
// threads' actions — wait-free bounded, which is the property Table 2's
// first column claims.
func (d *Domain[T]) scan(tid int) {
	list := d.retired[tid]
	// The snapshot pays one full matrix sweep up front; the linear probe
	// pays one sweep per entry. Below a handful of entries the probe wins
	// (it exits on the first hit and skips the sort), so the R=0 default
	// keeps it for the single-retire cadence and switches to the snapshot
	// only when a batched retire has stacked the list past the cutover.
	useSnap := d.rParam > 0 || len(list) > snapCutover
	var snap []uintptr
	if useSnap {
		snap = d.snapshot(tid)
	}
	kept := list[:0]
	condKept, protKept := int64(0), int64(0)
	for _, c := range list {
		condOK := c.cond == nil || c.cond()
		live := false
		if useSnap {
			live = snapContains(snap, c.node)
		} else {
			live = d.protected(c.node)
		}
		if condOK && !live {
			d.deleteCalls.V.Add(1)
			d.deleter(tid, c.node)
			continue
		}
		// Classify the holdout: an unmet condition is reported first
		// because it is the opaque case (a protection eventually clears;
		// an unmet condition needs its owner to act).
		if !condOK {
			condKept++
		} else {
			protKept++
		}
		kept = append(kept, c)
	}
	// Skip the stores when the split is unchanged: with R=0 this path
	// runs once per retire, and in steady state (no holdouts, or a
	// stable protected set) two always-dirty seq-cst stores here are
	// measurable on the dequeue hot path. The loads are plain MOVs.
	if d.bcond[tid].V.Load() != condKept {
		d.bcond[tid].V.Store(condKept)
	}
	if d.bprot[tid].V.Load() != protKept {
		d.bprot[tid].V.Store(protKept)
	}
	// Null the tail so dropped entries do not pin nodes in the backing
	// array (the deleter may have recycled them into a pool).
	for i := len(kept); i < len(list); i++ {
		list[i] = conditional[T]{}
	}
	d.retired[tid] = kept
	d.blen[tid].V.Store(int64(len(kept)))
	// CAS-max: scans on different threads race here, and a plain
	// load/store pair would let a smaller concurrent maximum overwrite a
	// larger one. Bounded: each failed CAS means another thread raised
	// the value, and it only ever grows.
	for n := int64(len(kept)); ; {
		cur := d.maxBacklogSz.V.Load()
		if cur >= n || d.maxBacklogSz.V.CompareAndSwap(cur, n) {
			break
		}
	}
}

// snapshot collects every non-nil pointer currently published in the
// scanned rows into tid's reusable buffer, sorted for binary search.
// Reading a slot once here is equivalent to the per-node linear probe
// reading it once per node: any protection published after its read
// belongs to a thread that can no longer validate the retired node.
// Pointers are compared as integers only (Go's GC does not move heap
// objects, and the retire list keeps every candidate node reachable).
func (d *Domain[T]) snapshot(tid int) []uintptr {
	snap := d.snap[tid][:0]
	if d.active != nil {
		limit := d.active.ActiveLimit()
		if limit > d.maxThreads {
			limit = d.maxThreads
		}
		for w := 0; w<<6 < limit; w++ {
			word := d.active.ActiveWord(w)
			for word != 0 {
				row := w<<6 + bits.TrailingZeros64(word)
				if row >= limit {
					break
				}
				word &= word - 1
				for i := 0; i < d.numHPs; i++ {
					if p := d.hp[row*d.numHPs+i].P.Load(); p != nil {
						snap = append(snap, uintptr(unsafe.Pointer(p)))
					}
				}
			}
		}
	} else {
		for i := range d.hp {
			if p := d.hp[i].P.Load(); p != nil {
				snap = append(snap, uintptr(unsafe.Pointer(p)))
			}
		}
	}
	sort.Slice(snap, func(a, b int) bool { return snap[a] < snap[b] })
	d.snap[tid] = snap
	return snap
}

// snapContains reports whether node is in the sorted snapshot.
func snapContains[T any](snap []uintptr, node *T) bool {
	p := uintptr(unsafe.Pointer(node))
	i := sort.Search(len(snap), func(i int) bool { return snap[i] >= p })
	return i < len(snap) && snap[i] == p
}

// protected reports whether any slot in the matrix currently holds node,
// sweeping only active rows when an ActiveSet is configured.
func (d *Domain[T]) protected(node *T) bool {
	if d.active != nil {
		limit := d.active.ActiveLimit()
		if limit > d.maxThreads {
			limit = d.maxThreads
		}
		for w := 0; w<<6 < limit; w++ {
			word := d.active.ActiveWord(w)
			for word != 0 {
				row := w<<6 + bits.TrailingZeros64(word)
				if row >= limit {
					break
				}
				word &= word - 1
				base := row * d.numHPs
				for i := 0; i < d.numHPs; i++ {
					if d.hp[base+i].P.Load() == node {
						return true
					}
				}
			}
		}
		return false
	}
	for i := range d.hp {
		if d.hp[i].P.Load() == node {
			return true
		}
	}
	return false
}

// Protected reports whether node is currently published in any slot.
// Exposed for tests and assertions only; the answer may be stale.
func (d *Domain[T]) Protected(node *T) bool { return d.protected(node) }

// Backlog returns the current total number of retired-but-not-deleted
// nodes across all threads. Used by the reclaim experiment to show the HP
// backlog stays bounded while a thread is stalled. Reads the atomic
// per-slot mirrors, so it is safe to call concurrently with retires.
func (d *Domain[T]) Backlog() int {
	n := int64(0)
	for tid := range d.blen {
		n += d.blen[tid].V.Load()
	}
	return int(n)
}

// SlotBacklog returns thread tid's current retired-but-not-deleted count.
// Atomic mirror of len(retired[tid]); safe to read from any goroutine. A
// non-zero value on a released slot is a stranded backlog — the leak the
// drain-on-release hook prevents.
func (d *Domain[T]) SlotBacklog(tid int) int { return int(d.blen[tid].V.Load()) }

// Stats reports cumulative retire and delete counts and the largest
// per-thread backlog observed at scan time.
func (d *Domain[T]) Stats() (retires, deletes, maxBacklog int64) {
	return d.retireCalls.V.Load(), d.deleteCalls.V.Load(), d.maxBacklogSz.V.Load()
}

// HoldStats splits the current backlog by holdout reason as of each
// thread's last scan: cond counts entries whose RetireCond condition was
// unmet, prot counts entries a hazard-pointer slot still protected.
func (d *Domain[T]) HoldStats() (cond, prot int64) {
	for tid := range d.bcond {
		cond += d.bcond[tid].V.Load()
		prot += d.bprot[tid].V.Load()
	}
	return cond, prot
}

// DrainThread force-scans thread tid's retire list. Callers use it when a
// thread unregisters, so its backlog does not linger until the next retire.
// Entries that are still protected or whose condition is unmet remain.
func (d *Domain[T]) DrainThread(tid int) {
	d.scan(tid)
}

// DrainAll force-scans every thread's retire list. Quiescence-only (queue
// Close): with no protections published and all conditions met it leaves
// the backlog at zero, including lists stranded on released slots that no
// later Acquire ever reused.
func (d *Domain[T]) DrainAll() {
	for tid := 0; tid < d.maxThreads; tid++ {
		d.scan(tid)
	}
}

// BacklogBound returns the maximum number of unreclaimed nodes reachable
// by any execution. Derivation, per thread t with list length L_t:
//
//   - A scan keeps only entries that are protected or condition-unmet;
//     at most maxThreads·numHPs slots exist, so protections alone keep
//     at most numHPs entries per row globally.
//   - Between scans, thread t appends at most R entries without
//     scanning (a scan fires once L_t > R), plus the one entry whose
//     retire is in flight when the bound is read — the mid-retire entry
//     a formula without the +1 misses.
//
// Summing: backlog ≤ maxThreads·numHPs + maxThreads·(R+1). At the
// paper's R=0 default this is exactly tight — the saturation test drives
// every term to its maximum simultaneously (each slot protecting a
// distinct retired node, each thread holding one condition-unmet
// entry). For R>0 the protection term cannot saturate in the same
// execution as the full R-term on every thread, so the formula is a
// valid upper bound with at most R slack — the price of a closed form.
// This is the single bound the accounting layer, the chaos suite, and
// the X4/X12 experiments all check against.
func (d *Domain[T]) BacklogBound() int {
	return d.maxThreads*d.numHPs + d.maxThreads*(d.rParam+1)
}

// Bound is the reclaim.Reclaimer quiescence contract: hazard pointers
// are bounded mid-run (the §3 fault-resilience claim).
func (d *Domain[T]) Bound() (int, bool) { return d.BacklogBound(), true }

// AccountInto appends this domain's snapshot to s under name (the
// reclaim.Reclaimer accounting contract).
func (d *Domain[T]) AccountInto(s *account.Snapshot, name string) {
	s.Hazard = append(s.Hazard, account.CaptureHazard(name, d))
}
