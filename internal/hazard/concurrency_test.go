package hazard

// Concurrency-focused tests beyond the protocol unit tests: multiple
// domains, concurrent conditional retires, and the per-thread retire-list
// ownership discipline under a producer/consumer split.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestTwoDomainsIndependent(t *testing.T) {
	// A node protected in one domain must not be protected in another:
	// domains are per-structure, like the paper's per-queue hp member.
	type nodeA struct{ v int }
	dA := New[nodeA](2, 2, func(_ int, n *nodeA) { n.v = -1 })
	dB := New[nodeA](2, 2, func(_ int, n *nodeA) { n.v = -2 })
	n := &nodeA{v: 1}
	dA.ProtectPtr(0, 0, n)
	dB.Retire(0, n) // B does not see A's protection
	if n.v != -2 {
		t.Fatalf("cross-domain protection leaked: v=%d", n.v)
	}
}

func TestConcurrentConditionalFlip(t *testing.T) {
	// Conditions flip concurrently with scans; every retired node must be
	// reclaimed exactly once, and only after its condition held.
	type cnode struct {
		released atomic.Bool
		freed    atomic.Int32
	}
	const threads, perThread = 4, 500
	var freedTotal atomic.Int32
	d := New[cnode](threads, 1, func(_ int, n *cnode) {
		if !n.released.Load() {
			t.Error("node freed before its condition held")
		}
		if n.freed.Add(1) != 1 {
			t.Error("node freed twice")
		}
		freedTotal.Add(1)
	})
	var wg sync.WaitGroup
	var pending []*cnode
	var mu sync.Mutex
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				n := &cnode{}
				mu.Lock()
				pending = append(pending, n)
				mu.Unlock()
				d.RetireCond(w, n, n.released.Load)
				if i%3 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}
	// Releaser: flips conditions while retirers scan.
	wg.Add(1)
	go func() {
		defer wg.Done()
		released := 0
		for released < threads*perThread {
			mu.Lock()
			for _, n := range pending {
				n.released.Store(true)
				released++
			}
			pending = pending[:0]
			mu.Unlock()
			runtime.Gosched()
		}
	}()
	wg.Wait()
	// Final drain from each owner thread.
	for w := 0; w < threads; w++ {
		d.DrainThread(w)
	}
	if got := freedTotal.Load(); got != threads*perThread {
		t.Fatalf("freed %d nodes, want %d", got, threads*perThread)
	}
}

func TestProtectOverwriteReleasesOld(t *testing.T) {
	// Re-publishing a slot releases the previously protected node.
	type n2 struct{ v int }
	var freed []*n2
	d := New[n2](1, 1, func(_ int, n *n2) { freed = append(freed, n) })
	a, b := &n2{v: 1}, &n2{v: 2}
	d.ProtectPtr(0, 0, a)
	d.ProtectPtr(0, 0, b) // overwrites: a is no longer protected
	d.Retire(0, a)
	if len(freed) != 1 || freed[0] != a {
		t.Fatalf("a not freed after overwrite: %v", freed)
	}
	d.Retire(0, b)
	if len(freed) != 1 {
		t.Fatal("b freed while protected")
	}
}

func TestHeavyChurnBacklogBounded(t *testing.T) {
	// Many threads retiring under live protection churn: total backlog
	// must respect the bound at every sample.
	type n3 struct{ _ int }
	const threads, rounds = 4, 2000
	d := New[n3](threads, 2, func(int, *n3) {})
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n := &n3{}
				d.ProtectPtr(i%2, w, n)
				d.Retire(w, n) // protected by ourselves: must be kept
				d.ClearOne(i%2, w)
				d.Retire(w, &n3{}) // unprotected: freed on this scan
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
	// Backlog reads other threads' retire lists, so it is only valid at
	// quiescence; the bound must hold here and the per-scan maximum
	// recorded during the run must as well.
	if got, bound := d.Backlog(), d.BacklogBound(); got > bound {
		t.Fatalf("backlog %d exceeds bound %d at quiescence", got, bound)
	}
	if _, _, maxB := d.Stats(); int(maxB) > d.BacklogBound() {
		t.Fatalf("max per-scan backlog %d exceeds bound %d", maxB, d.BacklogBound())
	}
}
