//go:build faultpoints

package hazard

import (
	"sync"
	"testing"
	"time"

	"turnqueue/internal/inject"
)

// TestBacklogBoundSaturation drives the domain into the exact worst case
// the BacklogBound derivation states and shows the bound is tight there
// — reached, and never exceeded.
//
// The bound is maxThreads·numHPs + maxThreads·(R+1). At R=0 (the
// paper's default) it is exactly reachable:
//
//   - maxThreads·numHPs: every (thread, slot) pair protects a distinct
//     retired node, so the scans keep all of them — the globally-
//     protected term.
//   - maxThreads·1: every thread is parked inside Retire between the
//     list append and the scan (the inject.HazardRetire window), so each
//     per-thread list carries exactly one mid-retire entry no scan has
//     resolved yet — the per-thread in-flight term.
//
// With both populations in place the backlog equals the bound; releasing
// the parked threads and clearing the slots drains it to zero. (For
// R > 0 the bound keeps ≤R per-thread slack — a list that has reached R
// unswept entries triggers a scan on the very next retire, so the R
// unswept plus the one in-flight entry can never simultaneously exceed
// R+1 per thread; the test pins the tight R=0 case.)
func TestBacklogBoundSaturation(t *testing.T) {
	t.Cleanup(inject.Reset)
	const threads, hps = 3, 2
	var mu sync.Mutex
	deleted := 0
	d := New[tnode](threads, hps, func(_ int, n *tnode) {
		mu.Lock()
		deleted++
		mu.Unlock()
	})
	bound := d.BacklogBound() // threads*hps + threads*(0+1) = 9

	// Population 1: every slot of every thread protects a distinct node,
	// all of which are retired (by thread 0 — the scans keep them
	// regardless of which list carries them).
	for tid := 0; tid < threads; tid++ {
		for i := 0; i < hps; i++ {
			n := &tnode{}
			d.ProtectPtr(i, tid, n)
			d.Retire(0, n)
		}
	}
	if got := d.Backlog(); got != threads*hps {
		t.Fatalf("protected population: backlog %d, want %d", got, threads*hps)
	}

	// Population 2: park every thread inside Retire after the append,
	// before the scan — each list now holds one unresolved entry.
	inject.Arm(inject.HazardRetire, inject.Stall(threads))
	done := make(chan struct{})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			d.Retire(tid, &tnode{})
		}(tid)
	}
	go func() { wg.Wait(); close(done) }()
	if got := inject.WaitStalled(threads, 10*time.Second); got < threads {
		t.Fatalf("only %d/%d threads parked mid-retire", got, threads)
	}
	inject.Disarm(inject.HazardRetire)

	// Saturated: the backlog must sit exactly at the bound.
	if got := d.Backlog(); got != bound {
		t.Fatalf("saturated backlog %d, want exactly the bound %d", got, bound)
	}

	// Release the parked retires; their scans may free nothing (every
	// other entry is protected) but the backlog must never exceed the
	// bound at any point.
	inject.ReleaseStalled()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("parked retires did not complete after release")
	}
	if got := d.Backlog(); got > bound {
		t.Fatalf("post-release backlog %d exceeds bound %d", got, bound)
	}

	// Quiescence: clear every slot and drain — the whole saturated
	// population reclaims.
	for tid := 0; tid < threads; tid++ {
		d.Clear(tid)
	}
	d.DrainAll()
	if got := d.Backlog(); got != 0 {
		t.Fatalf("backlog %d after clear+drain, want 0", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if deleted != bound {
		t.Fatalf("deleted %d nodes, want %d (the saturated population)", deleted, bound)
	}
}
