package turnqueue

// Cross-module integration tests: every public queue is checked against
// the exact linearizability checker on small recorded concurrent
// histories, under heavy oversubscription, and under handle churn.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"turnqueue/internal/lincheck"
)

// linearizableQueues lists the queues whose Dequeue-empty answers must be
// linearizable. (All of them; the Vyukov MPSC — whose empty answer is
// only "nothing visible" — is not part of the public Queue[T] surface.)
func linearizableQueues() map[string]func(opts ...Option) Queue[int64] {
	return map[string]func(opts ...Option) Queue[int64]{
		"Turn":         NewTurn[int64],
		"MichaelScott": NewMichaelScott[int64],
		"KoganPetrank": NewKoganPetrank[int64],
		"Sim":          NewSim[int64],
		"FAA":          NewFAA[int64],
		"TurnPlus":     NewTurnPlus[int64],
		// TurnPlus again with two-cell rings and patience 1, so histories
		// mix fast-path FAA operations with consensus slow-path rounds
		// (seals, ring installs, the dequeue march) instead of staying on
		// the fast path throughout.
		"TurnPlusSlow": func(opts ...Option) Queue[int64] {
			return NewTurnPlus[int64](append([]Option{WithSegmentSize(2), WithPatience(1)}, opts...)...)
		},
		"TwoLock": NewTwoLock[int64],
		// Backend matrix: Turn and TurnPlus under every non-default
		// reclamation backend. Reclamation must be invisible to the
		// consensus protocol — a history that linearizes under hazard
		// pointers must linearize identically under region-based (epoch,
		// qsbr) and era-based protection, including TurnPlus's
		// clear-per-operation region discipline on the FAA fast path.
		"Turn-epoch": func(opts ...Option) Queue[int64] {
			return NewTurn[int64](append([]Option{WithReclaimer(ReclaimerEpoch)}, opts...)...)
		},
		"Turn-qsbr": func(opts ...Option) Queue[int64] {
			return NewTurn[int64](append([]Option{WithReclaimer(ReclaimerQSBR)}, opts...)...)
		},
		"Turn-eras": func(opts ...Option) Queue[int64] {
			return NewTurn[int64](append([]Option{WithReclaimer(ReclaimerEras)}, opts...)...)
		},
		"TurnPlus-epoch": func(opts ...Option) Queue[int64] {
			return NewTurnPlus[int64](append([]Option{WithReclaimer(ReclaimerEpoch)}, opts...)...)
		},
		"TurnPlus-qsbr": func(opts ...Option) Queue[int64] {
			return NewTurnPlus[int64](append([]Option{WithReclaimer(ReclaimerQSBR)}, opts...)...)
		},
		"TurnPlus-eras": func(opts ...Option) Queue[int64] {
			return NewTurnPlus[int64](append([]Option{WithSegmentSize(2), WithPatience(1), WithReclaimer(ReclaimerEras)}, opts...)...)
		},
		// The sharded front at one shard is a strict pass-through: the
		// inner queue's full linearizability contract must survive the
		// facade (routing, stats, the release-hook mirror) byte for byte.
		"Sharded1": func(opts ...Option) Queue[int64] {
			return NewSharded[int64](append([]Option{WithShards(1)}, opts...)...)
		},
	}
}

// TestLinearizabilityShardedRelaxed records small concurrent histories
// on the multi-shard front and verifies the documented relaxed
// contract: global exactly-once plus per-shard FIFO linearizability.
// Values encode the producing worker, and each worker registers in
// order, so worker w's handle holds slot w and its values' shard is
// w%shards — the shardOf map the checker needs.
func TestLinearizabilityShardedRelaxed(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 5
	}
	const workers, opsEach, shards = 3, 4, 4
	for round := 0; round < rounds; round++ {
		q := NewSharded[int64](WithMaxThreads(workers), WithShards(shards))
		rec := lincheck.NewRecorder(workers)
		handles := make([]*Handle, workers)
		for w := range handles {
			h, err := q.Register()
			if err != nil {
				t.Fatal(err)
			}
			handles[w] = h
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := handles[w]
				for k := 0; k < opsEach; k++ {
					v := int64(w*1000 + k)
					s := rec.Begin()
					q.Enqueue(h, v)
					rec.EndEnq(w, v, s)
					s = rec.Begin()
					got, ok := q.Dequeue(h)
					rec.EndDeq(w, got, ok, s)
				}
			}(w)
		}
		wg.Wait()
		err := lincheck.CheckShardedRelaxed(rec.History(), shards, func(v int64) int {
			return int(v/1000) % shards
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, h := range handles {
			h.Close()
		}
		snap := q.Snapshot()
		if err := snap.VerifyQuiescent(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestLinearizabilityExact records small concurrent histories with real
// interleavings and verifies a valid linearization exists (DFS checker).
func TestLinearizabilityExact(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 5
	}
	for name, mk := range linearizableQueues() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for round := 0; round < rounds; round++ {
				const workers, opsEach = 3, 4
				q := mk(WithMaxThreads(workers))
				rec := lincheck.NewRecorder(workers)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						h, err := q.Register()
						if err != nil {
							t.Error(err)
							return
						}
						defer h.Close()
						for k := 0; k < opsEach; k++ {
							v := int64(w*1000 + k)
							s := rec.Begin()
							q.Enqueue(h, v)
							rec.EndEnq(w, v, s)
							s = rec.Begin()
							got, ok := q.Dequeue(h)
							rec.EndDeq(w, got, ok, s)
						}
					}(w)
				}
				wg.Wait()
				if err := lincheck.Check(rec.History()); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
		})
	}
}

// TestLinearizabilityBatchExact records histories mixing the batch and
// single operations on every public queue and verifies a valid
// linearization exists. A batch is recorded as its item count of
// operations sharing one Begin interval: the chain install (or, on the
// fallback constructors, the loop of singles) must linearize all of them
// inside that interval in slice order, which is exactly the batch
// linearization claim — FIFO within the batch included, since the
// checker only admits orders consistent with queue semantics.
func TestLinearizabilityBatchExact(t *testing.T) {
	rounds := 15
	if testing.Short() {
		rounds = 3
	}
	for name, mk := range linearizableQueues() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for round := 0; round < rounds; round++ {
				const workers, iters = 3, 2
				q := mk(WithMaxThreads(workers))
				rec := lincheck.NewRecorder(workers)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						h, err := q.Register()
						if err != nil {
							t.Error(err)
							return
						}
						defer h.Close()
						buf := make([]int64, 2)
						for k := 0; k < iters; k++ {
							v := int64(w*1000 + k*10)
							batch := []int64{v, v + 1}
							s := rec.Begin()
							q.EnqueueBatch(h, batch)
							for _, b := range batch {
								rec.EndEnq(w, b, s)
							}
							s = rec.Begin()
							q.Enqueue(h, v+5)
							rec.EndEnq(w, v+5, s)
							s = rec.Begin()
							n := q.DequeueBatch(h, buf)
							for i := 0; i < n; i++ {
								rec.EndDeq(w, buf[i], true, s)
							}
							if n == 0 {
								rec.EndDeq(w, 0, false, s)
							}
							s = rec.Begin()
							got, ok := q.Dequeue(h)
							rec.EndDeq(w, got, ok, s)
						}
					}(w)
				}
				wg.Wait()
				if err := lincheck.Check(rec.History()); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
		})
	}
}

// TestOversubscription runs 4x more workers than GOMAXPROCS — the §1.2
// scenario where wait-free helping matters most because workers are
// constantly descheduled mid-operation.
func TestOversubscription(t *testing.T) {
	per := 500
	if testing.Short() {
		per = 100
	}
	workers := 4 * runtime.GOMAXPROCS(0) * 2
	if workers < 8 {
		workers = 8
	}
	for name, mk := range linearizableQueues() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			q := mk(WithMaxThreads(workers))
			var wg sync.WaitGroup
			var consumed atomic.Int64
			total := int64(workers * per)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h, err := q.Register()
					if err != nil {
						t.Error(err)
						return
					}
					defer h.Close()
					for k := 0; k < per; k++ {
						q.Enqueue(h, int64(w*per+k))
						if _, ok := q.Dequeue(h); ok {
							consumed.Add(1)
						}
					}
					// Drain stragglers cooperatively.
					for consumed.Load() < total {
						if _, ok := q.Dequeue(h); ok {
							consumed.Add(1)
						} else {
							runtime.Gosched()
						}
					}
				}(w)
			}
			wg.Wait()
			if consumed.Load() != total {
				t.Fatalf("consumed %d, want %d", consumed.Load(), total)
			}
		})
	}
}

// TestHandleChurnUnderTraffic registers and releases handles continuously
// while other workers move items: slot recycling must never corrupt
// per-thread state.
func TestHandleChurnUnderTraffic(t *testing.T) {
	q := NewTurn[int64](WithMaxThreads(6))
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Two steady workers.
	var moved atomic.Int64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, err := q.Register()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Close()
			for i := int64(0); !stop.Load(); i++ {
				q.Enqueue(h, i)
				if _, ok := q.Dequeue(h); ok {
					moved.Add(1)
				}
			}
		}(w)
	}
	// Four churners: register, do a little work, close, repeat.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				err := With(q, func(h *Handle) {
					q.Enqueue(h, -1)
					q.Dequeue(h)
				})
				if err != nil && err != ErrNoSlots {
					t.Error(err)
					return
				}
				runtime.Gosched()
			}
		}()
	}
	for moved.Load() < 20000 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
}

// TestCrossQueuePipeline moves items through a chain of different queue
// implementations, checking count and per-source order at the end.
func TestCrossQueuePipeline(t *testing.T) {
	const items = 5000
	stage1 := NewTurn[int64](WithMaxThreads(3))
	stage2 := NewMichaelScott[int64](WithMaxThreads(3))
	stage3 := NewKoganPetrank[int64](WithMaxThreads(3))

	var out []int64
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // feeder
		defer wg.Done()
		h, _ := stage1.Register()
		defer h.Close()
		for i := int64(0); i < items; i++ {
			stage1.Enqueue(h, i)
		}
	}()
	pump := func(from, to Queue[int64], n int) {
		defer wg.Done()
		hin, _ := from.Register()
		defer hin.Close()
		hout, _ := to.Register()
		defer hout.Close()
		for got := 0; got < n; {
			if v, ok := from.Dequeue(hin); ok {
				to.Enqueue(hout, v)
				got++
			} else {
				runtime.Gosched()
			}
		}
	}
	wg.Add(2)
	go pump(stage1, stage2, items)
	go pump(stage2, stage3, items)

	wg.Add(1)
	go func() { // sink
		defer wg.Done()
		h, _ := stage3.Register()
		defer h.Close()
		for len(out) < items {
			if v, ok := stage3.Dequeue(h); ok {
				out = append(out, v)
			} else {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()

	if len(out) != items {
		t.Fatalf("sank %d items, want %d", len(out), items)
	}
	// Single feeder + single pump per stage => order fully preserved.
	for i, v := range out {
		if v != int64(i) {
			t.Fatalf("out[%d] = %d: order not preserved across stages", i, v)
		}
	}
}
