package turnqueue

import (
	"runtime"
	"sync"
	"testing"
)

func TestMPSCWrapper(t *testing.T) {
	q := NewMPSC[int]()
	const producers, per = 4, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				q.Enqueue(p*per + k)
			}
		}(p)
	}
	seen := make([]bool, producers*per)
	got := 0
	for got < producers*per {
		v, ok := q.Dequeue()
		if !ok {
			runtime.Gosched()
			continue
		}
		if seen[v] {
			t.Fatalf("item %d dequeued twice", v)
		}
		seen[v] = true
		got++
	}
	wg.Wait()
	if _, ok, lagging := q.TryDequeue(); ok || lagging {
		t.Fatal("queue should be definitively empty")
	}
}

func TestSPSCWrapper(t *testing.T) {
	q := NewSPSC[int](8)
	if q.Capacity() != 8 {
		t.Fatalf("capacity = %d", q.Capacity())
	}
	for i := 0; i < 8; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.Enqueue(99) {
		t.Fatal("enqueue on full ring succeeded")
	}
	for i := 0; i < 8; i++ {
		if v, ok := q.Dequeue(); !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty ring succeeded")
	}
}

func TestMPSCLaggingReport(t *testing.T) {
	// Whitebox-ish: after heavy concurrent enqueues the consumer may
	// transiently see lagging=true; after everything settles it must see
	// a definitive empty. This drives the TryDequeue tri-state.
	q := NewMPSC[int]()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				q.Enqueue(k)
			}
		}()
	}
	drained := 0
	for drained < 4000 {
		if _, ok, _ := q.TryDequeue(); ok {
			drained++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
	if _, ok, lagging := q.TryDequeue(); ok || lagging {
		t.Fatal("expected definitive empty after drain and producer exit")
	}
}
