package turnqueue

import "turnqueue/internal/account"

// Snapshot is a point-in-time resource-accounting view of one queue:
// registration state from the shared runtime, hazard-pointer and epoch
// reclamation backlogs, node/descriptor pool balances, helping-loop
// overrun counters, and queue-specific extras. Every Queue (and
// AutoQueue) produces one via its Snapshot method.
//
// Two uses:
//
//   - Live diagnostics: Snapshot is safe to call concurrently with
//     operations (every field is backed by an atomic counter), so
//     long-running processes can dump or export it periodically — the
//     cmd tools publish it through expvar.
//   - Leak gating: after every handle is closed, VerifyQuiescent asserts
//     the paper's bounds — zero live slots, hazard backlog within
//     BacklogBound, pool counters balanced, zero overruns. The stress
//     tests and scripts/ci.sh run it as a leak gate.
//
// The concrete type lives in internal/account so internal packages can
// fill it without import cycles; the alias re-exports it unchanged.
type Snapshot = account.Snapshot

// DomainSnapshot is the per-hazard-domain view inside a Snapshot,
// including the per-slot retire backlog (a non-zero entry on a released
// slot is exactly the leak drain-on-release prevents).
type DomainSnapshot = account.DomainSnapshot

// PoolSnapshot is the per-pool view inside a Snapshot. At quiescence
// Retained == Puts - Drops - Reuses; VerifyQuiescent enforces it.
type PoolSnapshot = account.PoolSnapshot

// EpochSnapshot is the epoch-reclamation view inside a Snapshot (FAA
// queue only). Deliberately bound-free: epoch reclamation has no
// fault-resilient backlog bound — the paper's §3 contrast.
type EpochSnapshot = account.EpochSnapshot
