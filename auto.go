package turnqueue

import (
	"runtime"
	"sync/atomic"

	"turnqueue/internal/qrt"
)

// AutoQueue wraps any Queue[T] with implicit handle management, so
// ordinary goroutines can call Enqueue(v) / Dequeue() without touching
// Register/Close. It is the on-ramp for callers that cannot pin work to
// long-lived workers — request handlers, short-lived goroutines,
// untrusted caller counts.
//
// Internally it leases slot ids from a sharded free-id pool
// (qrt.Leaser): an operation pops an id from the ring its goroutine is
// hinted at, registers a real handle the first time that id is used,
// runs the operation, and pushes the id back. Because the rings are
// sharded by a per-goroutine affinity hint, concurrent callers on
// different shards never touch the same cache lines on the hot path —
// unlike the previous design, a single CAS-claimed slot array whose
// shared scan hint made every acquire fight over the same slots as
// oversubscription grew. A leaser whose home ring is empty steals from
// the other shards before minting a fresh id, so sequential use still
// registers exactly one handle no matter how many rings exist.
//
// While the number of concurrent callers stays within MaxThreads(),
// every operation completes in a bounded number of steps (one ring pop,
// at worst one sweep over a fixed number of rings) and handles are
// registered exactly once, not per operation. When more goroutines than
// MaxThreads() call concurrently, the surplus callers yield and retry —
// the queue keeps its exactly-once guarantees, but the wait-free bound
// no longer applies to the waiters (no bounded algorithm can serve
// unbounded concurrent callers from a fixed slot array). Latency-pinned
// workers should keep using explicit handles on the underlying queue;
// both styles can share one queue, because the cache draws its handles
// from the same registration runtime.
type AutoQueue[T any] struct {
	q      Queue[T]
	leaser *qrt.Leaser
	cache  []*Handle // cache[id]: lazily registered handle, nil until first use
	closed atomic.Bool

	registers atomic.Int64 // handles registered through the cache
	waits     atomic.Int64 // rounds where no id was free to lease or reserve
}

// NewAuto wraps q with implicit handle management. The lease pool is
// sized to q.MaxThreads() ids over min(GOMAXPROCS, MaxThreads) shards;
// handles are registered lazily as concurrency grows, so wrapping costs
// nothing for ids that are never circulated. Explicit Register calls on
// q reduce the slots available to the wrapper.
func NewAuto[T any](q Queue[T]) *AutoQueue[T] {
	mt := q.MaxThreads()
	shards := runtime.GOMAXPROCS(0)
	if shards > mt {
		shards = mt
	}
	return &AutoQueue[T]{
		q:      q,
		leaser: qrt.NewLeaser(mt, shards),
		cache:  make([]*Handle, mt),
	}
}

// acquire leases a slot id with a registered handle cached behind it.
// The caller must return the id with Unlease(id, hint) when the
// operation completes. cache[id] needs no atomics: it is written under
// the lease, and the ring's sequence words carry the happens-before
// edge from one leaseholder to the next.
func (a *AutoQueue[T]) acquire() (id int, hint uint32) {
	if a.closed.Load() {
		panic("turnqueue: operation on closed AutoQueue")
	}
	hint = qrt.ShardHint()
	for {
		id, ok := a.leaser.Lease(hint)
		if !ok {
			// Nothing circulating on any shard: mint a fresh id. Trying
			// Lease first (including its steal sweep) is what keeps
			// sequential callers on one recycled id instead of minting
			// a new registration per shard.
			id, ok = a.leaser.Reserve()
		}
		if !ok {
			// All MaxThreads ids are leased by in-flight operations:
			// more concurrent callers than slots. Yield and retry.
			if a.closed.Load() {
				panic("turnqueue: operation on closed AutoQueue")
			}
			a.waits.Add(1)
			runtime.Gosched()
			continue
		}
		if a.closed.Load() {
			// Close ran between the entry check and the lease. Back the
			// lease out — Close's collection sweep is waiting to pop
			// exactly the issued ids — then fail like any post-close call.
			a.leaser.Unlease(id, hint)
			panic("turnqueue: operation on closed AutoQueue")
		}
		if a.cache[id] == nil {
			// First use of this id: register for real. This can lose to
			// explicit Register calls on the underlying queue taking the
			// remaining capacity; recirculate the id unregistered and
			// retry — a later lease retries registration.
			h, err := a.q.Register()
			if err != nil {
				a.leaser.Unlease(id, hint)
				if a.closed.Load() {
					panic("turnqueue: operation on closed AutoQueue")
				}
				a.waits.Add(1)
				runtime.Gosched()
				continue
			}
			a.cache[id] = h
			a.registers.Add(1)
		}
		return id, hint
	}
}

// Enqueue inserts item at the tail, registering this call's slot id on
// first use. The unlease is deferred so a panicking underlying
// operation (slot misuse under debughandles, a corrupted-invariant
// crash) cannot strand the id outside circulation forever.
func (a *AutoQueue[T]) Enqueue(item T) {
	id, hint := a.acquire()
	defer a.leaser.Unlease(id, hint)
	a.q.Enqueue(a.cache[id], item)
}

// Dequeue removes the item at the head; ok is false when the queue is
// observed empty. The unlease is deferred; see Enqueue.
func (a *AutoQueue[T]) Dequeue() (item T, ok bool) {
	id, hint := a.acquire()
	defer a.leaser.Unlease(id, hint)
	return a.q.Dequeue(a.cache[id])
}

// EnqueueBatch inserts items in slice order, leasing one slot id for
// the whole batch — the lease cost is paid once per batch, not per
// item. See Queue.EnqueueBatch for the contiguity guarantees.
func (a *AutoQueue[T]) EnqueueBatch(items []T) {
	id, hint := a.acquire()
	defer a.leaser.Unlease(id, hint)
	a.q.EnqueueBatch(a.cache[id], items)
}

// DequeueBatch removes up to len(buf) items into buf under one lease
// and returns the count taken; zero means observed empty.
func (a *AutoQueue[T]) DequeueBatch(buf []T) int {
	id, hint := a.acquire()
	defer a.leaser.Unlease(id, hint)
	return a.q.DequeueBatch(a.cache[id], buf)
}

// MaxThreads returns the underlying queue's registered-thread bound,
// which is also this wrapper's maximum concurrency before callers start
// waiting on each other.
func (a *AutoQueue[T]) MaxThreads() int { return a.q.MaxThreads() }

// Meta describes the underlying algorithm.
func (a *AutoQueue[T]) Meta() Meta { return a.q.Meta() }

// Unwrap returns the underlying queue, e.g. to register explicit handles
// for latency-pinned workers alongside the implicit ones.
func (a *AutoQueue[T]) Unwrap() Queue[T] { return a.q }

// Snapshot captures the underlying queue's resource-accounting view plus
// the wrapper's own lease counters: auto_registered (handles lazily
// registered through the cache), auto_waits (rounds where every id was
// leased), lease_hits / lease_steals (leases served by the hinted home
// ring vs another shard's ring), and — while the wrapper is open —
// lease_issued (ids in circulation) and lease_held (ids leased to
// in-flight operations right now).
func (a *AutoQueue[T]) Snapshot() Snapshot {
	s := a.q.Snapshot()
	s.Counter("auto_registered", a.registers.Load())
	s.Counter("auto_waits", a.waits.Load())
	hits, steals := a.leaser.Stats()
	s.Counter("lease_hits", hits)
	s.Counter("lease_steals", steals)
	if !a.closed.Load() {
		s.Counter("lease_issued", int64(a.leaser.Issued()))
		s.Counter("lease_held", int64(a.leaser.Held()))
	}
	return s
}

// ReclaimPressure reports the wrapped queue's reclaim backlog against
// its structural bound, if the queue exposes the seam (bounded=false
// otherwise). The service breaker samples this on the request path.
func (a *AutoQueue[T]) ReclaimPressure() (backlog, bound int, bounded bool) {
	if p, ok := a.q.(interface {
		ReclaimPressure() (int, int, bool)
	}); ok {
		return p.ReclaimPressure()
	}
	return 0, 0, false
}

// Close retires every issued lease and releases every cached handle
// back to the queue. Operations in flight when Close begins are waited
// out — each finishes normally and its handle is closed afterwards —
// while operations that start after Close panic. Closing twice panics.
//
// The wait matters for correctness, not just politeness: an operation
// can lease an id in the window between Close setting the closed flag
// and Close's sweep collecting that id. The sweep keeps popping until
// it has collected every issued id (the leaseholder either completes
// and unleases, or observes closed and backs out, both in bounded
// time), so every cached handle is reliably closed — and each handle
// Close runs the runtime's release hooks, draining that slot's retire
// backlog exactly as explicit-handle retirement does. Collected ids are
// never pushed back, so a racing late operation can never reach a
// closed handle; it fails the closed check instead. After Close returns
// the leaser's Held() is zero and the queue's VerifyQuiescent holds.
func (a *AutoQueue[T]) Close() {
	if a.closed.Swap(true) {
		panic("turnqueue: Close of closed AutoQueue")
	}
	hint := qrt.ShardHint()
	collected := 0
	// Issued() is re-read every iteration: a Reserve racing with Close
	// either backs out (its id lands in a ring for this sweep to
	// collect) or is never registered (nothing to close).
	for collected < a.leaser.Issued() {
		id, ok := a.leaser.Lease(hint)
		if !ok {
			runtime.Gosched()
			continue
		}
		if h := a.cache[id]; h != nil {
			h.Close()
			a.cache[id] = nil
		}
		collected++
	}
	// Every handle is closed: the queue is quiescent, so force-drain any
	// reclamation residue the per-slot release hooks could not free (the
	// unbounded backends legitimately keep some until this point).
	if d, ok := a.q.(reclaimDrainer); ok {
		d.DrainReclaim()
	}
}
