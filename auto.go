package turnqueue

import (
	"runtime"
	"sync/atomic"

	"turnqueue/internal/pad"
)

// AutoQueue wraps any Queue[T] with implicit handle management, so
// ordinary goroutines can call Enqueue(v) / Dequeue() without touching
// Register/Close. It is the on-ramp for callers that cannot pin work to
// long-lived workers — request handlers, short-lived goroutines,
// untrusted caller counts.
//
// Internally it keeps a cache of up to MaxThreads() handles, one per
// padded cache slot. An operation claims a free slot (a wait-free
// bounded scan, like slot registration itself), registers a real handle
// the first time that slot is used, runs the operation, and releases the
// slot with a single store. While the number of concurrent callers stays
// within MaxThreads(), every operation therefore completes in a bounded
// number of steps and handles are registered exactly once, not per
// operation.
//
// When more goroutines than MaxThreads() call concurrently, the surplus
// callers yield and rescan until a slot frees up — the queue keeps its
// exactly-once guarantees, but the wait-free bound no longer applies to
// the waiters (no bounded algorithm can serve unbounded concurrent
// callers from a fixed slot array). Latency-pinned workers should keep
// using explicit handles on the underlying queue; both styles can share
// one queue, because the cache draws its handles from the same
// registration runtime.
type AutoQueue[T any] struct {
	q      Queue[T]
	slots  []autoSlot
	hint   atomic.Uint32 // last slot acquired; scan origin for the next op
	closed atomic.Bool

	registers atomic.Int64 // handles registered through the cache
	waits     atomic.Int64 // full-scan rounds that found no free slot
}

// autoSlot is one padded cache entry: a claim flag plus the lazily
// registered handle. The handle pointer is written once, under the
// claim, and only read by claim holders, so it needs no atomics.
type autoSlot struct {
	busy atomic.Bool
	h    *Handle // 1 byte of flag + 7 of alignment + 8 of pointer = 16
	_    [2*pad.CacheLine - 16]byte
}

// NewAuto wraps q with implicit handle management. The cache is sized to
// q.MaxThreads(); handles are registered lazily as concurrency grows, so
// wrapping costs nothing for slots that are never reached. Explicit
// Register calls on q reduce the slots available to the wrapper.
func NewAuto[T any](q Queue[T]) *AutoQueue[T] {
	return &AutoQueue[T]{q: q, slots: make([]autoSlot, q.MaxThreads())}
}

// acquire claims a cache slot with a registered handle. One scan pass is
// wait-free bounded; when every slot is busy or unregistrable the caller
// yields and rescans.
func (a *AutoQueue[T]) acquire() *autoSlot {
	if a.closed.Load() {
		panic("turnqueue: operation on closed AutoQueue")
	}
	n := uint32(len(a.slots))
	start := a.hint.Load()
	for {
		for i := uint32(0); i < n; i++ {
			idx := (start + i) % n
			s := &a.slots[idx]
			if s.busy.Load() {
				continue
			}
			if !s.busy.CompareAndSwap(false, true) {
				continue
			}
			if a.closed.Load() {
				// Close ran between the entry check and the claim. Back
				// the claim out — otherwise Close's sweep would either
				// leak this slot forever or wait on a caller that is
				// about to panic — then fail like any post-close call.
				s.busy.Store(false)
				panic("turnqueue: operation on closed AutoQueue")
			}
			if s.h == nil {
				// First use of this cache slot: register for real. This
				// can lose to explicit Register calls on the underlying
				// queue taking the remaining capacity; back out and let
				// the scan try other (already registered) slots.
				h, err := a.q.Register()
				if err != nil {
					s.busy.Store(false)
					continue
				}
				s.h = h
				a.registers.Add(1)
			}
			if idx != start {
				a.hint.Store(idx)
			}
			return s
		}
		// All slots busy (more concurrent callers than MaxThreads) or
		// taken by explicit handles: yield and rescan.
		if a.closed.Load() {
			panic("turnqueue: operation on closed AutoQueue")
		}
		a.waits.Add(1)
		runtime.Gosched()
		start = a.hint.Load()
	}
}

// Enqueue inserts item at the tail, registering this call's thread slot
// on first use. The slot release is deferred so a panicking underlying
// operation (slot misuse under debughandles, a corrupted-invariant crash)
// cannot strand the cache slot in the busy state forever.
func (a *AutoQueue[T]) Enqueue(item T) {
	s := a.acquire()
	defer s.busy.Store(false)
	a.q.Enqueue(s.h, item)
}

// Dequeue removes the item at the head; ok is false when the queue is
// observed empty. Slot release is deferred; see Enqueue.
func (a *AutoQueue[T]) Dequeue() (item T, ok bool) {
	s := a.acquire()
	defer s.busy.Store(false)
	return a.q.Dequeue(s.h)
}

// EnqueueBatch inserts items in slice order, claiming one cache slot for
// the whole batch — the slot-scan cost is paid once per batch, not per
// item. See Queue.EnqueueBatch for the contiguity guarantees.
func (a *AutoQueue[T]) EnqueueBatch(items []T) {
	s := a.acquire()
	defer s.busy.Store(false)
	a.q.EnqueueBatch(s.h, items)
}

// DequeueBatch removes up to len(buf) items into buf under one cache
// slot claim and returns the count taken; zero means observed empty.
func (a *AutoQueue[T]) DequeueBatch(buf []T) int {
	s := a.acquire()
	defer s.busy.Store(false)
	return a.q.DequeueBatch(s.h, buf)
}

// MaxThreads returns the underlying queue's registered-thread bound,
// which is also this wrapper's maximum concurrency before callers start
// waiting on each other.
func (a *AutoQueue[T]) MaxThreads() int { return a.q.MaxThreads() }

// Meta describes the underlying algorithm.
func (a *AutoQueue[T]) Meta() Meta { return a.q.Meta() }

// Unwrap returns the underlying queue, e.g. to register explicit handles
// for latency-pinned workers alongside the implicit ones.
func (a *AutoQueue[T]) Unwrap() Queue[T] { return a.q }

// Snapshot captures the underlying queue's resource-accounting view plus
// the wrapper's own cache counters: auto_registered (handles lazily
// registered through the cache), auto_waits (full-scan rounds where every
// slot was busy), and — while the wrapper is open — auto_busy (slots
// currently claimed by in-flight operations).
func (a *AutoQueue[T]) Snapshot() Snapshot {
	s := a.q.Snapshot()
	s.Counter("auto_registered", a.registers.Load())
	s.Counter("auto_waits", a.waits.Load())
	if !a.closed.Load() {
		var busy int64
		for i := range a.slots {
			if a.slots[i].busy.Load() {
				busy++
			}
		}
		s.Counter("auto_busy", busy)
	}
	return s
}

// Close releases every cached handle back to the queue. Operations in
// flight when Close begins are waited out — each finishes normally and
// its handle is closed afterwards — while operations that start after
// Close panic. Closing twice panics.
//
// The wait matters for correctness, not just politeness: an operation
// can claim a cache slot in the window between Close setting the closed
// flag and Close's sweep reaching that slot. The sweep waits for the
// claim to clear (the claimer either completes or observes closed and
// backs out, both in bounded time), so every cached handle is reliably
// closed. A sweep that skipped busy slots instead would strand the
// slot's handle — a registration slot leaked for the queue's lifetime.
func (a *AutoQueue[T]) Close() {
	if a.closed.Swap(true) {
		panic("turnqueue: Close of closed AutoQueue")
	}
	for i := range a.slots {
		s := &a.slots[i]
		for !s.busy.CompareAndSwap(false, true) {
			runtime.Gosched()
		}
		if s.h != nil {
			s.h.Close()
			s.h = nil
		}
		// The slot stays claimed so a racing late operation can never
		// reach the closed handle; it fails the closed check instead.
	}
}
