// Package turnqueue provides wait-free and lock-free multi-producer
// multi-consumer queues, reproducing "A Wait-Free Queue with Wait-Free
// Memory Reclamation" (Ramalhete & Correia, PPoPP 2017).
//
// The headline implementation is the Turn queue (NewTurn): a linearizable,
// memory-unbounded MPMC queue whose enqueue and dequeue complete in a
// number of steps bounded by the number of threads, using only
// compare-and-swap, with integrated wait-free hazard-pointer memory
// reclamation. The package also ships every queue the paper compares
// against — Michael-Scott (lock-free), Kogan-Petrank (wait-free),
// FK-style combining, YMC-style FAA segment queue, and a two-lock
// blocking queue — behind one generic interface, so applications and the
// benchmark harness can swap algorithms freely.
//
// # Thread handles
//
// Wait-free bounded algorithms dedicate one slot of their per-thread
// arrays to each participating thread; the slot count fixes the step
// bound. Callers obtain a slot by registering with the queue:
//
//	q := turnqueue.NewTurn[int](turnqueue.WithMaxThreads(8))
//	h, err := q.Register()
//	if err != nil { ... }
//	defer h.Close()
//	q.Enqueue(h, 42)
//	v, ok := q.Dequeue(h)
//
// A Handle must not be used concurrently from two goroutines, and pinning
// the goroutine with runtime.LockOSThread for latency-critical work makes
// a handle approximate the paper's per-OS-thread index.
package turnqueue

import (
	"errors"

	"turnqueue/internal/qrt"
)

// ErrNoSlots is returned by Register when MaxThreads handles are already
// live for the queue.
var ErrNoSlots = errors.New("turnqueue: all thread slots in use; raise WithMaxThreads or Close an unused handle")

// Handle is a registered thread slot of one specific queue. It is not
// safe for concurrent use by multiple goroutines.
//
// Handle misuse — operating through a closed handle, or passing a
// handle to a queue it was not registered with — corrupts the per-slot
// state the wait-free bounds depend on. Release builds keep the
// operation hot path free of validation branches; build with
// `-tags debughandles` (scripts/ci.sh does) to make every operation
// validate its handle and panic loudly on misuse.
type Handle struct {
	slot  int
	owner registered
}

// Slot returns the handle's slot index in [0, MaxThreads()).
func (h *Handle) Slot() int { return h.slot }

// Close releases the slot back to the queue. The handle must not be used
// afterwards; the slot index is poisoned so that release-build misuse of
// a closed handle fails on the queue's slot-array bounds instead of
// silently sharing a re-issued slot.
func (h *Handle) Close() {
	if h.owner == nil {
		panic("turnqueue: Close of closed handle")
	}
	h.owner.runtime().Release(h.slot)
	h.owner = nil
	h.slot = -1
}

// registered is the internal surface adapters expose to Handle.
type registered interface {
	runtime() *qrt.Runtime
}

// Queue is the generic MPMC queue interface every implementation in this
// package satisfies.
type Queue[T any] interface {
	// Register claims a thread slot. Callers must Close the handle when
	// the goroutine stops using the queue.
	Register() (*Handle, error)
	// Enqueue inserts item at the tail.
	Enqueue(h *Handle, item T)
	// Dequeue removes the item at the head; ok is false when the queue is
	// observed empty.
	Dequeue(h *Handle) (item T, ok bool)
	// EnqueueBatch inserts items at the tail in slice order. On
	// implementations with native batch support (the Turn queue and its
	// variants) the whole batch is appended contiguously in a single
	// wait-free consensus round, so its items are never interleaved with
	// other enqueues; the remaining algorithms fall back to a loop of
	// single enqueues, which keeps slice order but not contiguity under
	// concurrency. An empty slice is a no-op.
	EnqueueBatch(h *Handle, items []T)
	// DequeueBatch removes up to len(buf) items from the head into buf,
	// returning how many were taken; zero means the queue was observed
	// empty. Items appear in buf in queue (FIFO) order. Native batch
	// implementations retire all claimed nodes in one reclamation pass.
	DequeueBatch(h *Handle, buf []T) int
	// MaxThreads returns the registered-thread bound.
	MaxThreads() int
	// Meta describes the algorithm (Table 1's columns).
	Meta() Meta
	// Snapshot captures the queue's resource-accounting view: live
	// handles, hazard/epoch reclamation backlogs, pool balances, and
	// helping-loop overruns. Safe to call concurrently with operations;
	// call Snapshot().VerifyQuiescent() after every handle is closed to
	// assert the paper's reclamation bounds.
	Snapshot() Snapshot
}

// register implements Register for the adapters.
func register(q registered) (*Handle, error) {
	slot, ok := q.runtime().Acquire()
	if !ok {
		return nil, ErrNoSlots
	}
	return &Handle{slot: slot, owner: q}, nil
}

// With runs body with a temporary handle, handling registration and
// release. Convenient for short-lived workers:
//
//	err := turnqueue.With(q, func(h *turnqueue.Handle) {
//	    q.Enqueue(h, job)
//	})
func With[T any](q Queue[T], body func(h *Handle)) error {
	h, err := q.Register()
	if err != nil {
		return err
	}
	defer h.Close()
	body(h)
	return nil
}
