//go:build faultpoints

package turnqueue

// Chaos tests: drive the internal/inject fault points against the real
// queue implementations and assert the two claims the paper stakes on
// wait-freedom and hazard-pointer reclamation:
//
//   (a) with one thread parked forever mid-operation, every other thread
//       on the Turn-based queues still completes within the structural
//       step bound (OverrunStats stays zero), while the blocking
//       baseline visibly stops and the lock-free baseline's retry count
//       grows past any per-thread bound;
//   (b) with one reader parked inside its critical section, the hazard
//       backlog stays within R + maxThreads·numHPs while the epoch
//       backlog grows without bound (§3's fault-resilience contrast);
//   (c) a thread that crashes without Close is detected by the
//       accounting layer as a stranded slot, by index, with the retire
//       backlog it pins.
//
// Victim targeting uses claim-based policies: arm the point, park the
// designated victim, WaitStalled, disarm, and only then start healthy
// workers — so exactly the intended goroutine is hit. Run with
// `go test -tags faultpoints -run TestChaos`.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"turnqueue/internal/account"
	"turnqueue/internal/core"
	"turnqueue/internal/eras"
	"turnqueue/internal/faaq"
	"turnqueue/internal/inject"
	"turnqueue/internal/kpq"
	"turnqueue/internal/lincheck"
	"turnqueue/internal/lockq"
	"turnqueue/internal/msq"
	"turnqueue/internal/qrt"
	"turnqueue/internal/reclaim"
	"turnqueue/internal/sharded"
	"turnqueue/internal/turnplus"
)

// chaosSeed returns the delay-injection seed: CHAOS_SEED from the
// environment for replaying a failed schedule, else a fixed default. The
// seed is always logged so any failure is replayable.
func chaosSeed(t *testing.T) uint64 {
	seed := uint64(0x5eedc0de)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %#x (replay: CHAOS_SEED=%#x)", seed, seed)
	return seed
}

// parkVictim arms point with a one-claim stall, runs op on a fresh
// goroutine until it parks, then disarms the point so later arrivals
// pass through. It returns a channel closed when the victim eventually
// finishes (after ReleaseStalled).
func parkVictim(t *testing.T, point inject.Point, op func()) <-chan struct{} {
	t.Helper()
	inject.Arm(point, inject.Stall(1))
	done := make(chan struct{})
	go func() {
		defer close(done)
		op()
	}()
	if got := inject.WaitStalled(1, 10*time.Second); got < 1 {
		t.Fatalf("victim never parked at %v (stalled=%d)", point, got)
	}
	inject.Disarm(point)
	return done
}

// awaitOrFatal fails the test if ch does not close within d.
func awaitOrFatal(t *testing.T, ch <-chan struct{}, d time.Duration, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(d):
		t.Fatalf("%s did not complete within %v", what, d)
	}
}

// acquireSlot registers a raw slot or fails the test.
func acquireSlot(t *testing.T, rt *qrt.Runtime) int {
	t.Helper()
	slot, ok := rt.Acquire()
	if !ok {
		t.Fatal("no registration slot free")
	}
	return slot
}

// TestChaosStalledThreadTurnWaitFree parks one Turn-queue thread forever
// right after it publishes its enqueue request — the worst window,
// because every other thread is now obliged to help the corpse — and
// asserts the healthy threads all complete within the structural bound
// (zero overruns) with the hazard backlog still inside the §3 ceiling.
func TestChaosStalledThreadTurnWaitFree(t *testing.T) {
	t.Cleanup(inject.Reset)
	q := core.New[int](core.WithMaxThreads(8))
	rt := q.Runtime()
	victim := acquireSlot(t, rt)

	victimDone := parkVictim(t, inject.CoreEnqPublish, func() { q.Enqueue(victim, -1) })

	const workers, pairs = 6, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		slot := acquireSlot(t, rt)
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			defer rt.Release(slot)
			for i := 0; i < pairs; i++ {
				q.Enqueue(slot, i)
				q.Dequeue(slot)
			}
		}(slot)
	}
	healthy := make(chan struct{})
	go func() { wg.Wait(); close(healthy) }()
	awaitOrFatal(t, healthy, 60*time.Second, "healthy workers (victim stalled mid-enqueue)")

	// The victim is still parked: the wait-free bound and the reclamation
	// bound must both hold in its presence, not just after cleanup.
	if got := inject.Stalled(); got != 1 {
		t.Fatalf("expected the victim still parked, Stalled() = %d", got)
	}
	if enq, deq := q.OverrunStats(); enq != 0 || deq != 0 {
		t.Fatalf("helping-loop overruns enq=%d deq=%d with one thread stalled; wait-free bound violated", enq, deq)
	}
	hz := q.Hazard()
	if b, bound := hz.Backlog(), hz.BacklogBound(); b > bound {
		t.Fatalf("hazard backlog %d exceeds bound %d while one thread is stalled", b, bound)
	}

	inject.ReleaseStalled()
	awaitOrFatal(t, victimDone, 10*time.Second, "released victim")
	rt.Release(victim)

	s := account.Capture("turn", rt, q)
	if err := s.VerifyQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosStalledThreadMidBatch parks one thread forever right after it
// publishes a pre-linked chain of k nodes (the EnqueueBatch consensus
// round) and asserts the batch-specific claims: healthy threads — mixing
// batch and single operations — all complete within the structural bound
// (zero overruns) while the victim stays parked, and the victim's chain
// is all-or-nothing. The park point sits after the publish, so helpers
// must install the entire chain: every one of the k items drains exactly
// once, in chain order at each consumer, even though the enqueuer never
// ran its own helping loop.
func TestChaosStalledThreadMidBatch(t *testing.T) {
	t.Cleanup(inject.Reset)
	q := core.New[int](core.WithMaxThreads(8))
	rt := q.Runtime()
	victim := acquireSlot(t, rt)

	// Chain items are distinct negative sentinels; healthy traffic is
	// non-negative, so consumers can attribute every dequeue.
	const chainLen = 16
	chain := make([]int, chainLen)
	for i := range chain {
		chain[i] = -1 - i
	}
	victimDone := parkVictim(t, inject.CoreEnqBatchPublish, func() { q.EnqueueBatch(victim, chain) })

	const workers, rounds, k = 6, 50, 4
	seen := make([]atomic.Int32, chainLen) // seen[i]: dequeues of chain item i
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		slot := acquireSlot(t, rt)
		wg.Add(1)
		go func(w, slot int) {
			defer wg.Done()
			defer rt.Release(slot)
			items := make([]int, k)
			buf := make([]int, k)
			lastChainIdx := -1 // per-consumer FIFO within the victim's chain
			note := func(v int) {
				if v >= 0 {
					return
				}
				idx := -v - 1
				seen[idx].Add(1)
				if idx <= lastChainIdx {
					t.Errorf("worker %d saw chain item %d after %d; chain order broken", w, idx, lastChainIdx)
				}
				lastChainIdx = idx
			}
			for r := 0; r < rounds; r++ {
				for i := range items {
					items[i] = w*10000 + r*k + i
				}
				q.EnqueueBatch(slot, items)
				n := q.DequeueBatch(slot, buf)
				for i := 0; i < n; i++ {
					note(buf[i])
				}
				q.Enqueue(slot, w*10000+9000+r)
				if v, ok := q.Dequeue(slot); ok {
					note(v)
				}
			}
		}(w, slot)
	}
	healthy := make(chan struct{})
	go func() { wg.Wait(); close(healthy) }()
	awaitOrFatal(t, healthy, 60*time.Second, "healthy workers (victim stalled mid-batch)")

	// With the victim still parked: wait-free bound, reclamation bound.
	if got := inject.Stalled(); got != 1 {
		t.Fatalf("expected the victim still parked, Stalled() = %d", got)
	}
	if enq, deq := q.OverrunStats(); enq != 0 || deq != 0 {
		t.Fatalf("helping-loop overruns enq=%d deq=%d with one thread stalled mid-batch; wait-free bound violated", enq, deq)
	}
	hz := q.Hazard()
	if b, bound := hz.Backlog(), hz.BacklogBound(); b > bound {
		t.Fatalf("hazard backlog %d exceeds bound %d while one thread is stalled mid-batch", b, bound)
	}

	// Drain the leftovers (the victim's chain has no matching dequeues)
	// and close the books: every chain item exactly once, none lost to
	// the parked publisher — the chain is fully visible, not partially.
	drainer := acquireSlot(t, rt)
	buf := make([]int, chainLen)
	lastChainIdx := -1
	for {
		n := q.DequeueBatch(drainer, buf)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if v := buf[i]; v < 0 {
				idx := -v - 1
				seen[idx].Add(1)
				if idx <= lastChainIdx {
					t.Errorf("drain saw chain item %d after %d; chain order broken", idx, lastChainIdx)
				}
				lastChainIdx = idx
			}
		}
	}
	rt.Release(drainer)
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Errorf("chain item %d dequeued %d times, want exactly 1 (all-or-nothing violated)", i, got)
		}
	}

	inject.ReleaseStalled()
	awaitOrFatal(t, victimDone, 10*time.Second, "released victim")
	rt.Release(victim)

	s := account.Capture("turn", rt, q)
	if err := s.VerifyQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosStalledThreadKPWaitFree is the same scenario against the
// Kogan-Petrank queue, parked in its own worst window: descriptor
// installed and pending, help() never entered. The paper's helping
// mechanism must finish the parked thread's operation and keep every
// healthy thread finishing too.
func TestChaosStalledThreadKPWaitFree(t *testing.T) {
	t.Cleanup(inject.Reset)
	q := kpq.New[int](kpq.WithMaxThreads(8))
	rt := q.Runtime()
	victim := acquireSlot(t, rt)

	victimDone := parkVictim(t, inject.KPQInstall, func() { q.Enqueue(victim, -1) })

	const workers, pairs = 6, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		slot := acquireSlot(t, rt)
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			defer rt.Release(slot)
			for i := 0; i < pairs; i++ {
				q.Enqueue(slot, i)
				q.Dequeue(slot)
			}
		}(slot)
	}
	healthy := make(chan struct{})
	go func() { wg.Wait(); close(healthy) }()
	awaitOrFatal(t, healthy, 60*time.Second, "healthy workers (victim stalled mid-install)")

	s := account.Capture("kp", rt, q)
	for _, h := range s.Hazard {
		if h.Backlog > h.Bound {
			t.Fatalf("hazard[%s] backlog %d exceeds bound %d while one thread is stalled", h.Name, h.Backlog, h.Bound)
		}
	}

	inject.ReleaseStalled()
	awaitOrFatal(t, victimDone, 10*time.Second, "released victim")
	rt.Release(victim)

	s = account.Capture("kp", rt, q)
	if err := s.VerifyQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosStalledLockHolderBlocksTwoLock is the negative control: the
// same park-one-thread adversary that the wait-free queues shrug off
// stops the two-lock baseline dead. A victim parked holding the tail
// lock blocks every other enqueuer until it is released — the §1.2
// blocking critique, made observable.
func TestChaosStalledLockHolderBlocksTwoLock(t *testing.T) {
	t.Cleanup(inject.Reset)
	q := lockq.New[int]()

	victimDone := parkVictim(t, inject.LockQEnqLocked, func() { q.Enqueue(0) })

	const blocked = 3
	var completed atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w <= blocked; w++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			q.Enqueue(v)
			completed.Add(1)
		}(w)
	}
	// Give the blocked enqueuers ample time to (not) make progress.
	time.Sleep(100 * time.Millisecond)
	if got := completed.Load(); got != 0 {
		t.Fatalf("%d enqueue(s) completed while the lock holder was stalled; two-lock queue should block them all", got)
	}

	inject.ReleaseStalled()
	awaitOrFatal(t, victimDone, 10*time.Second, "released lock holder")
	wg.Wait()
	if got := completed.Load(); got != blocked {
		t.Fatalf("completed = %d after release, want %d", got, blocked)
	}

	// The victim's item was linked first (it held the lock); the rest
	// follow in some serialization order.
	first, ok := q.Dequeue()
	if !ok || first != 0 {
		t.Fatalf("first dequeue = (%d, %v), want the stalled holder's item 0", first, ok)
	}
	for i := 0; i < blocked; i++ {
		if _, ok := q.Dequeue(); !ok {
			t.Fatalf("item %d missing after release", i+1)
		}
	}
}

// TestChaosSchedulerAdversaryMSQvsTurn runs the same deterministic-yield
// adversary (Gosched at the top of every retry window) against the
// Michael-Scott queue and the Turn queue. MS's retry count has no bound
// and climbs under the adversary; the Turn queue's helping loop, under
// the identical adversary, never exceeds its structural maxThreads+1
// bound — Table 1's lock-free vs wait-free row, measured.
func TestChaosSchedulerAdversaryMSQvsTurn(t *testing.T) {
	t.Cleanup(inject.Reset)
	// The container may expose a single CPU; real thread interleaving is
	// what turns CAS races into retries, so run on several Ps.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	const workers, pairs = 4, 1500
	inject.Arm(inject.MSQEnqLoop, inject.Yield(1))
	inject.Arm(inject.MSQDeqLoop, inject.Yield(1))
	inject.Arm(inject.CoreEnqHelp, inject.Yield(1))
	inject.Arm(inject.CoreDeqHelp, inject.Yield(1))
	// The decisive yield sits INSIDE the load→CAS window (both queues
	// fire it from ProtectPtr): with yields only at loop tops, a single
	// CPU round-robins whole op bodies and no CAS ever fails.
	inject.Arm(inject.HazardProtect, inject.Yield(1))

	run := func(enq func(slot, v int), deq func(slot int), rt *qrt.Runtime) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			slot := acquireSlot(t, rt)
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				defer rt.Release(slot)
				for i := 0; i < pairs; i++ {
					enq(slot, i)
					deq(slot)
				}
			}(slot)
		}
		wg.Wait()
	}

	mq := msq.New[int](workers)
	run(func(s, v int) { mq.Enqueue(s, v) }, func(s int) { mq.Dequeue(s) }, mq.Runtime())

	tq := core.New[int](core.WithMaxThreads(workers))
	run(func(s, v int) { tq.Enqueue(s, v) }, func(s int) { tq.Dequeue(s) }, tq.Runtime())

	msTries := mq.MaxTries()
	enq, deq := tq.OverrunStats()
	t.Logf("adversary: msq max tries per op = %d; turn overruns = %d/%d", msTries, enq, deq)
	if enq != 0 || deq != 0 {
		t.Fatalf("turn queue exceeded its helping bound under the yield adversary: overruns %d/%d", enq, deq)
	}
	if msTries < 2 {
		t.Fatalf("msq max tries = %d under the yield adversary; expected the unbounded retry path to be exercised (>= 2)", msTries)
	}
}

// TestChaosStalledReaderEpochVsHazard is the §3 reclamation contrast. A
// reader parked inside the FAA queue's epoch critical section pins the
// global epoch: every retired segment thereafter is unreclaimable and
// the backlog climbs checkpoint over checkpoint. The same parked-reader
// adversary against the Turn queue's hazard domain leaves the backlog
// inside R + maxThreads·numHPs at every checkpoint.
func TestChaosStalledReaderEpochVsHazard(t *testing.T) {
	t.Cleanup(inject.Reset)
	const segSize, chunks, segsPerChunk = 64, 3, 10

	// Epoch side: backlog grows without bound while the reader stalls.
	fq := faaq.New[int](faaq.WithMaxThreads(8), faaq.WithSegmentSize(segSize))
	frt := fq.Runtime()
	victim := acquireSlot(t, frt)
	victimDone := parkVictim(t, inject.FAAQRead, func() { fq.Enqueue(victim, -1) })

	worker := acquireSlot(t, frt)
	var epochBacklog [chunks]int
	for c := 0; c < chunks; c++ {
		for i := 0; i < segSize*segsPerChunk; i++ {
			fq.Enqueue(worker, i)
			fq.Dequeue(worker)
		}
		epochBacklog[c] = fq.Epochs().Backlog()
	}
	for c := 1; c < chunks; c++ {
		if epochBacklog[c] <= epochBacklog[c-1] {
			t.Fatalf("epoch backlog stopped growing with a stalled reader: checkpoints %v", epochBacklog)
		}
	}
	t.Logf("epoch backlog under stalled reader: %v (unbounded growth)", epochBacklog)

	inject.ReleaseStalled()
	awaitOrFatal(t, victimDone, 10*time.Second, "released epoch reader")
	frt.Release(worker)
	frt.Release(victim)

	// Hazard side: same adversary, same churn, bounded backlog throughout.
	q := core.New[int](core.WithMaxThreads(8))
	rt := q.Runtime()
	hworker := acquireSlot(t, rt)
	// Pre-fill so the victim's enqueue protects a real tail node — one
	// that later flows through a dequeuer's retire path and is pinned by
	// the parked protection (the initial sentinel never gets retired).
	for i := 0; i < 8; i++ {
		q.Enqueue(hworker, i)
	}
	hvictim := acquireSlot(t, rt)
	hvictimDone := parkVictim(t, inject.HazardProtect, func() { q.Enqueue(hvictim, -1) })

	hz := q.Hazard()
	bound := hz.BacklogBound()
	var hazBacklog [chunks]int
	for c := 0; c < chunks; c++ {
		for i := 0; i < segSize*segsPerChunk; i++ {
			q.Enqueue(hworker, i)
			q.Dequeue(hworker)
		}
		hazBacklog[c] = hz.Backlog()
		if hazBacklog[c] > bound {
			t.Fatalf("hazard backlog %d exceeds bound %d at checkpoint %d with a stalled reader", hazBacklog[c], bound, c)
		}
	}
	if retires, _, _ := hz.Stats(); retires == 0 {
		t.Fatal("churn retired nothing; the hazard half of this test is vacuous")
	}
	// The parked protection must pin something real: a retired node the
	// scan keeps alive, so the bound is exercised rather than vacuously
	// zero. (Growth stops there — the contrast with the epoch curve.)
	if hazBacklog[chunks-1] == 0 {
		t.Fatalf("stalled protection pins nothing after %d retires; checkpoints %v", chunks*segSize*segsPerChunk, hazBacklog)
	}
	t.Logf("hazard backlog under stalled reader: %v (bound %d)", hazBacklog, bound)

	inject.ReleaseStalled()
	awaitOrFatal(t, hvictimDone, 10*time.Second, "released hazard reader")
	rt.Release(hworker)
	rt.Release(hvictim)
}

// TestChaosStalledReaderFourBackends is experiment X12's chaos gate: the
// same parked-reader adversary — one thread stalled inside its Protect
// window, every backend's shared inject.HazardProtect fault point —
// against the Turn queue on each of the four reclamation backends, with
// identical churn. The outcomes split exactly along the §3 +
// WFE-progress axis the backend table claims:
//
//   - hazard: backlog ≤ BacklogBound at every checkpoint (per-pointer
//     protection confines the damage to the stalled slot's entries);
//   - eras:   backlog ≤ its stated bound and plateaus — the stalled
//     reservation pins only nodes live at the stall era, because
//     recycled nodes are re-stamped with later birth eras;
//   - epoch, qsbr: backlog grows checkpoint over checkpoint without
//     bound — one stalled region pins every later retire.
//
// In all four cases, releasing the victim and draining leaves zero.
func TestChaosStalledReaderFourBackends(t *testing.T) {
	const segSize, chunks, segsPerChunk = 64, 3, 10
	const maxThreads = 8
	for _, kind := range reclaim.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Cleanup(inject.Reset)
			q := core.New[int](core.WithMaxThreads(maxThreads), core.WithBackend(kind))
			rt := q.Runtime()
			worker := acquireSlot(t, rt)
			// Pre-fill so the victim's stalled protection covers real
			// nodes that later flow through the retire path.
			for i := 0; i < 8; i++ {
				q.Enqueue(worker, i)
			}
			victim := acquireSlot(t, rt)
			victimDone := parkVictim(t, inject.HazardProtect, func() { q.Enqueue(victim, -1) })

			rc := q.Reclaimer()
			bound, bounded := rc.Bound()
			// Bound() is each backend's quiescence bound. Hazard's also
			// holds at any instant; a stalled eras reservation additionally
			// pins every node whose lifetime intersects its era window —
			// the nodes live at the stall (prefill + sentinel + the
			// victim's own in-flight node) plus at most one era's worth of
			// births before the era advances past it. That window term is
			// what separates eras' plateau from hazard's hard ceiling.
			ceiling := bound
			if kind == reclaim.KindEras {
				ceiling += eras.DefaultEraFreq + 2*(8+2)
			}
			var backlog [chunks]int
			for c := 0; c < chunks; c++ {
				for i := 0; i < segSize*segsPerChunk; i++ {
					q.Enqueue(worker, i)
					q.Dequeue(worker)
				}
				backlog[c] = rc.Backlog()
				if bounded && backlog[c] > ceiling {
					t.Fatalf("%s backlog %d exceeds stated bound %d at checkpoint %d with a stalled reader",
						kind, backlog[c], ceiling, c)
				}
			}
			if bounded {
				// Bounded backends must also plateau: growth between the
				// late checkpoints is at most scan-in-flight slack, not
				// another chunk of retires.
				if backlog[chunks-1] > backlog[chunks-2]+maxThreads {
					t.Fatalf("%s backlog kept growing under a stalled reader: checkpoints %v (bound %d)",
						kind, backlog, ceiling)
				}
				if backlog[chunks-1] == 0 {
					t.Fatalf("%s stalled protection pins nothing; the bound is vacuous (checkpoints %v)", kind, backlog)
				}
				t.Logf("%s backlog under stalled reader: %v (ceiling %d, plateau)", kind, backlog, ceiling)
			} else {
				for c := 1; c < chunks; c++ {
					if backlog[c] <= backlog[c-1] {
						t.Fatalf("%s backlog stopped growing with a stalled reader: checkpoints %v", kind, backlog)
					}
				}
				t.Logf("%s backlog under stalled reader: %v (unbounded growth)", kind, backlog)
			}

			inject.ReleaseStalled()
			awaitOrFatal(t, victimDone, 10*time.Second, "released "+string(kind)+" reader")
			rt.Release(worker)
			rt.Release(victim)
			q.DrainReclaim()
			if b := rc.Backlog(); b != 0 {
				t.Fatalf("%s backlog %d after release and drain, want 0", kind, b)
			}
		})
	}
}

// TestChaosCrashWithoutCloseDetected crashes a thread mid-enqueue (its
// Handle never Closed — the drain-on-release hook never ran) and asserts
// the accounting layer detects it: the snapshot names the stranded slot
// by index and the retire backlog it pins, and VerifyQuiescent fails
// with that detail until the handle is reclaimed.
func TestChaosCrashWithoutCloseDetected(t *testing.T) {
	t.Cleanup(inject.Reset)
	// R above the op count defers scans, so the crashed slot's retire
	// list demonstrably still holds nodes.
	q := NewTurn[int](WithMaxThreads(4), WithHazardR(64))
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q.Enqueue(h, i)
		q.Dequeue(h)
	}

	inject.Arm(inject.CoreEnqPublish, inject.Crash(1))
	func() {
		defer func() {
			r := recover()
			ce, ok := r.(inject.CrashError)
			if !ok {
				t.Fatalf("recovered %v (%T), want inject.CrashError", r, r)
			}
			if ce.Point != inject.CoreEnqPublish {
				t.Fatalf("crashed at %v, want %v", ce.Point, inject.CoreEnqPublish)
			}
		}()
		q.Enqueue(h, 99)
		t.Error("enqueue returned; crash policy did not fire")
	}()
	inject.Disarm(inject.CoreEnqPublish)
	// The goroutine "died": its handle is abandoned, never Closed.

	s := q.Snapshot()
	if s.LiveSlots != 1 {
		t.Fatalf("LiveSlots = %d after the crash, want 1", s.LiveSlots)
	}
	stranded := s.Stranded()
	if len(stranded) != 1 || stranded[0].Slot != h.Slot() {
		t.Fatalf("Stranded() = %+v, want slot %d", stranded, h.Slot())
	}
	if stranded[0].Backlog["nodes"] == 0 {
		t.Fatal("stranded slot pins no retire backlog; raise R or the op count")
	}
	err = s.VerifyQuiescent()
	if err == nil {
		t.Fatal("VerifyQuiescent passed with a crashed thread's slot live")
	}
	if want := fmt.Sprintf("slot %d stranded", h.Slot()); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}

	// Operator recovery: reclaiming the dead thread's handle drains its
	// backlog and restores quiescence.
	h.Close()
	post := q.Snapshot()
	if err := post.VerifyQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosLincheckUnderDelayInjection records concurrent histories on
// all six public queues while seeded random delays are armed on every
// stall-sensitive window, and runs each history through the exact
// linearizability checker. The delays force interleavings the bare
// scheduler rarely produces; the seed makes a failing schedule
// replayable (set CHAOS_SEED to the logged value).
// TestChaosStalledThreadTurnPlusFastEnq parks one TurnPlus thread
// forever inside the enqueue fast-path claim window — FAA ticket drawn,
// deposit CAS not yet issued — and asserts the claim the fast path
// stakes its wait-freedom on: an abandoned ticket is just a cell other
// dequeuers poison, so healthy threads (mixing fast-path singles with
// slow-path batches) all complete within the structural bound, and the
// victim's item arrives exactly once after release.
func TestChaosStalledThreadTurnPlusFastEnq(t *testing.T) {
	t.Cleanup(inject.Reset)
	q := turnplus.New[int](turnplus.WithMaxThreads(8), turnplus.WithSegmentSize(8), turnplus.WithPatience(2))
	rt := q.Runtime()
	victim := acquireSlot(t, rt)

	// Pre-seed one item so the victim's Enqueue takes the fast path (an
	// empty queue's tail is the sentinel, which falls back immediately).
	seeder := acquireSlot(t, rt)
	q.Enqueue(seeder, -2)
	victimDone := parkVictim(t, inject.CoreFastClaim, func() { q.Enqueue(victim, -1) })

	const workers, pairs = 6, 300
	var wg sync.WaitGroup
	var drained atomic.Int64
	for w := 0; w < workers; w++ {
		slot := acquireSlot(t, rt)
		wg.Add(1)
		go func(w, slot int) {
			defer wg.Done()
			defer rt.Release(slot)
			buf := [3]int{}
			for i := 0; i < pairs; i++ {
				if i%5 == 0 {
					// Batches always announce into the consensus slow
					// path: the completers the scenario must prove the
					// parked claimant cannot block.
					for j := range buf {
						buf[j] = w*10000 + i + j
					}
					q.EnqueueBatch(slot, buf[:])
					for k := 0; k < len(buf); {
						if _, ok := q.Dequeue(slot); ok {
							drained.Add(1)
							k++
						}
					}
					continue
				}
				q.Enqueue(slot, w*10000+i)
				for {
					if _, ok := q.Dequeue(slot); ok {
						drained.Add(1)
						break
					}
				}
			}
		}(w, slot)
	}
	healthy := make(chan struct{})
	go func() { wg.Wait(); close(healthy) }()
	awaitOrFatal(t, healthy, 60*time.Second, "healthy workers (victim parked mid-fast-claim)")

	if got := inject.Stalled(); got != 1 {
		t.Fatalf("expected the victim still parked, Stalled() = %d", got)
	}
	if enq, deq := q.OverrunStats(); enq != 0 || deq != 0 {
		t.Fatalf("overruns enq=%d deq=%d with one thread parked mid-fast-claim; bound violated", enq, deq)
	}
	hz := q.Hazard()
	if b, bound := hz.Backlog(), hz.BacklogBound(); b > bound {
		t.Fatalf("hazard backlog %d exceeds bound %d while one thread is parked", b, bound)
	}

	inject.ReleaseStalled()
	awaitOrFatal(t, victimDone, 10*time.Second, "released victim")

	// The released victim finished its enqueue (its original ticket was
	// poisoned away, so it retried or fell back): the victim's item plus
	// exactly one other (the healthy workers drained as many as they
	// enqueued, so one of {seed, worker items} is left over).
	remaining := map[int]bool{}
	for {
		v, ok := q.Dequeue(victim)
		if !ok {
			break
		}
		remaining[v] = true
	}
	if len(remaining) != 2 || !remaining[-1] {
		t.Fatalf("leftover items %v, want two items including the victim's -1", remaining)
	}
	rt.Release(victim)
	rt.Release(seeder)

	s := account.Capture("turnplus", rt, q)
	if err := s.VerifyQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosStalledThreadTurnPlusFastDeq parks one TurnPlus dequeuer
// forever with a drawn FAA ticket (claim window, cell not yet resolved)
// and asserts healthy threads — including slow-path dequeuers whose
// march must skip or resolve whatever the victim left behind — keep
// completing within the bound.
func TestChaosStalledThreadTurnPlusFastDeq(t *testing.T) {
	t.Cleanup(inject.Reset)
	q := turnplus.New[int](turnplus.WithMaxThreads(8), turnplus.WithSegmentSize(8), turnplus.WithPatience(1))
	rt := q.Runtime()
	victim := acquireSlot(t, rt)
	seeder := acquireSlot(t, rt)
	for i := 0; i < 4; i++ {
		q.Enqueue(seeder, -10-i)
	}
	victimDone := parkVictim(t, inject.CoreFastClaim, func() { q.Dequeue(victim) })

	const workers, pairs = 6, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		slot := acquireSlot(t, rt)
		wg.Add(1)
		go func(w, slot int) {
			defer wg.Done()
			defer rt.Release(slot)
			for i := 0; i < pairs; i++ {
				q.Enqueue(slot, w*10000+i)
				for {
					if _, ok := q.Dequeue(slot); ok {
						break
					}
				}
			}
		}(w, slot)
	}
	healthy := make(chan struct{})
	go func() { wg.Wait(); close(healthy) }()
	awaitOrFatal(t, healthy, 60*time.Second, "healthy workers (victim parked mid-fast-dequeue)")

	if enq, deq := q.OverrunStats(); enq != 0 || deq != 0 {
		t.Fatalf("overruns enq=%d deq=%d with one dequeuer parked mid-claim; bound violated", enq, deq)
	}
	hz := q.Hazard()
	if b, bound := hz.Backlog(), hz.BacklogBound(); b > bound {
		t.Fatalf("hazard backlog %d exceeds bound %d while one thread is parked", b, bound)
	}

	inject.ReleaseStalled()
	awaitOrFatal(t, victimDone, 10*time.Second, "released victim")

	// Victim took one of the seeded items; the other three must drain.
	got := 0
	for {
		if _, ok := q.Dequeue(seeder); !ok {
			break
		}
		got++
	}
	if got != 3 {
		t.Fatalf("drained %d leftover items, want 3 (victim holds the fourth)", got)
	}
	rt.Release(victim)
	rt.Release(seeder)
}

// TestChaosStalledThreadTurnPlusFallback parks one TurnPlus thread at
// the fast→slow handoff — patience exhausted, consensus announce not
// yet made. The window holds no published state at all, so the parked
// thread must be invisible: zero overruns, backlog in bound, and the
// queue drains to exactly the healthy threads' items.
func TestChaosStalledThreadTurnPlusFallback(t *testing.T) {
	t.Cleanup(inject.Reset)
	q := turnplus.New[int](turnplus.WithMaxThreads(8), turnplus.WithSegmentSize(8))
	rt := q.Runtime()
	victim := acquireSlot(t, rt)
	probe := acquireSlot(t, rt)

	// A fresh queue's tail is the sentinel, so the victim's first
	// enqueue deterministically reaches the fallback point.
	victimDone := parkVictim(t, inject.CoreFastFallback, func() { q.Enqueue(victim, -1) })

	const workers, pairs = 6, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		slot := acquireSlot(t, rt)
		wg.Add(1)
		go func(w, slot int) {
			defer wg.Done()
			defer rt.Release(slot)
			for i := 0; i < pairs; i++ {
				q.Enqueue(slot, w*10000+i)
				for {
					if _, ok := q.Dequeue(slot); ok {
						break
					}
				}
			}
		}(w, slot)
	}
	healthy := make(chan struct{})
	go func() { wg.Wait(); close(healthy) }()
	awaitOrFatal(t, healthy, 60*time.Second, "healthy workers (victim parked pre-announce)")

	if enq, deq := q.OverrunStats(); enq != 0 || deq != 0 {
		t.Fatalf("overruns enq=%d deq=%d with one thread parked pre-announce; bound violated", enq, deq)
	}
	if _, ok := q.Dequeue(probe); ok {
		t.Fatal("parked pre-announce enqueue became visible")
	}

	inject.ReleaseStalled()
	awaitOrFatal(t, victimDone, 10*time.Second, "released victim")
	if v, ok := q.Dequeue(probe); !ok || v != -1 {
		t.Fatalf("victim's item after release: got (%d,%v), want (-1,true)", v, ok)
	}
	rt.Release(victim)
	rt.Release(probe)
}

func TestChaosLincheckUnderDelayInjection(t *testing.T) {
	t.Cleanup(inject.Reset)
	seed := chaosSeed(t)
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	delayed := []inject.Point{
		inject.CoreEnqPublish, inject.CoreEnqBatchPublish, inject.CoreEnqHelp,
		inject.CoreDeqOpen, inject.CoreDeqHelp,
		inject.HazardProtect, inject.HazardRetire, inject.KPQInstall, inject.EpochEnter,
		inject.FAAQRead, inject.MSQEnqLoop, inject.MSQDeqLoop,
		inject.LockQEnqLocked, inject.LockQDeqLocked,
		inject.CoreFastClaim, inject.CoreFastFallback,
	}
	for name, mk := range linearizableQueues() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for round := 0; round < rounds; round++ {
				rseed := seed + uint64(round)
				for _, p := range delayed {
					inject.Arm(p, inject.Delay(rseed, 0, 50*time.Microsecond))
				}
				const workers, opsEach = 3, 4
				q := mk(WithMaxThreads(workers))
				rec := lincheck.NewRecorder(workers)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						h, err := q.Register()
						if err != nil {
							t.Error(err)
							return
						}
						defer h.Close()
						buf := make([]int64, 2)
						for k := 0; k < opsEach; k++ {
							v := int64(w*1000 + k*10)
							if k%2 == 1 {
								// Odd iterations go through the batch API: a
								// batch records its item count of operations
								// sharing one interval — the chain install
								// must linearize them inside it, in order.
								batch := []int64{v, v + 1}
								s := rec.Begin()
								q.EnqueueBatch(h, batch)
								for _, b := range batch {
									rec.EndEnq(w, b, s)
								}
								s = rec.Begin()
								n := q.DequeueBatch(h, buf)
								for i := 0; i < n; i++ {
									rec.EndDeq(w, buf[i], true, s)
								}
								if n == 0 {
									rec.EndDeq(w, 0, false, s)
								}
								continue
							}
							s := rec.Begin()
							q.Enqueue(h, v)
							rec.EndEnq(w, v, s)
							s = rec.Begin()
							got, ok := q.Dequeue(h)
							rec.EndDeq(w, got, ok, s)
						}
					}(w)
				}
				wg.Wait()
				for _, p := range delayed {
					inject.Disarm(p)
				}
				if err := lincheck.Check(rec.History()); err != nil {
					t.Fatalf("round %d (seed %#x): %v", round, rseed, err)
				}
			}
		})
	}
}

// TestChaosShardStall parks one front-queue thread forever inside its
// home shard's FAA fast claim — a victim holding both a live lease-layer
// slot and a mid-operation fault — and asserts the sharded front's
// isolation claims: every other worker keeps completing (on the
// victim's shard by turnplus wait-freedom, on the other shards by
// construction), stolen dequeues stay exactly-once, and every shard's
// hazard backlog respects its own R + maxThreads*numHPs bound.
func TestChaosShardStall(t *testing.T) {
	t.Cleanup(inject.Reset)
	const maxThreads, shards = 8, 4
	inners := make([]*turnplus.Queue[int], shards)
	q := sharded.New[int](maxThreads, shards, func(i int) sharded.Inner[int] {
		inners[i] = turnplus.New[int](
			turnplus.WithMaxThreads(maxThreads),
			turnplus.WithSegmentSize(8),
			turnplus.WithPatience(2),
		)
		return inners[i]
	})
	rt := q.Runtime()
	victim := acquireSlot(t, rt) // slot 0: home shard 0
	seeder := acquireSlot(t, rt) // slot 1: home shard 1

	// Seed the victim's home shard so its Enqueue takes the fast path
	// (an empty queue's tail is the sentinel, which falls back).
	inners[0].Enqueue(seeder, -2)
	victimDone := parkVictim(t, inject.CoreFastClaim, func() { q.Enqueue(victim, -1) })

	// Healthy workers on slots 2..7 — homes 2,3,0,1,2,3 — cover both the
	// victim's shard and the rest. Each records what it dequeues so
	// stolen values can be checked for exactly-once delivery.
	const workers, pairs = 6, 300
	got := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		slot := acquireSlot(t, rt)
		wg.Add(1)
		go func(w, slot int) {
			defer wg.Done()
			defer rt.Release(slot)
			for i := 0; i < pairs; i++ {
				q.Enqueue(slot, w*10000+i)
				for {
					if v, ok := q.Dequeue(slot); ok {
						got[w] = append(got[w], v)
						break
					}
				}
			}
		}(w, slot)
	}
	healthy := make(chan struct{})
	go func() { wg.Wait(); close(healthy) }()
	awaitOrFatal(t, healthy, 60*time.Second, "healthy workers (victim parked mid-claim in shard 0)")

	if got := inject.Stalled(); got != 1 {
		t.Fatalf("expected the victim still parked, Stalled() = %d", got)
	}
	for i, inner := range inners {
		if enq, deq := inner.OverrunStats(); enq != 0 || deq != 0 {
			t.Fatalf("shard %d overruns enq=%d deq=%d with the victim parked; per-shard bound violated", i, enq, deq)
		}
		hz := inner.Hazard()
		if b, bound := hz.Backlog(), hz.BacklogBound(); b > bound {
			t.Fatalf("shard %d hazard backlog %d exceeds its bound %d while the victim is parked", i, b, bound)
		}
	}

	inject.ReleaseStalled()
	awaitOrFatal(t, victimDone, 10*time.Second, "released victim")

	// Exactly-once across steals: merge every worker's takings with a
	// final drain; each enqueued value must surface exactly once.
	seen := map[int]bool{}
	record := func(v int) {
		if seen[v] {
			t.Fatalf("value %d dequeued twice (a stolen dequeue duplicated it)", v)
		}
		seen[v] = true
	}
	for w := range got {
		for _, v := range got[w] {
			record(v)
		}
	}
	for {
		v, ok := q.Dequeue(victim)
		if !ok {
			break
		}
		record(v)
	}
	want := workers*pairs + 2 // worker items + seed (-2) + victim's (-1)
	if len(seen) != want || !seen[-1] || !seen[-2] {
		t.Fatalf("dequeued %d distinct values (victim=%v seed=%v), want %d including both",
			len(seen), seen[-1], seen[-2], want)
	}
	rt.Release(victim)
	rt.Release(seeder)

	s := account.Capture("Sharded", rt, q)
	if err := s.VerifyQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosShardedRelaxedUnderDelayInjection is the multi-shard row of
// the seeded-delay matrix: with every fault point jittering, recorded
// histories must still satisfy the front's relaxed specification
// (global exactly-once + per-shard FIFO). The strict spec for the
// shards=1 row is covered by Sharded1 in linearizableQueues.
func TestChaosShardedRelaxedUnderDelayInjection(t *testing.T) {
	t.Cleanup(inject.Reset)
	seed := chaosSeed(t)
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	delayed := []inject.Point{
		inject.CoreEnqPublish, inject.CoreEnqHelp,
		inject.CoreDeqOpen, inject.CoreDeqHelp,
		inject.HazardProtect, inject.HazardRetire,
		inject.CoreFastClaim, inject.CoreFastFallback,
	}
	const workers, opsEach, shards = 3, 4, 4
	for round := 0; round < rounds; round++ {
		rseed := seed + uint64(round)
		for _, p := range delayed {
			inject.Arm(p, inject.Delay(rseed, 0, 50*time.Microsecond))
		}
		q := NewSharded[int64](WithMaxThreads(workers), WithShards(shards))
		rec := lincheck.NewRecorder(workers)
		handles := make([]*Handle, workers)
		for w := range handles {
			h, err := q.Register()
			if err != nil {
				t.Fatal(err)
			}
			handles[w] = h
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := handles[w]
				for k := 0; k < opsEach; k++ {
					v := int64(w*1000 + k)
					s := rec.Begin()
					q.Enqueue(h, v)
					rec.EndEnq(w, v, s)
					s = rec.Begin()
					deq, ok := q.Dequeue(h)
					rec.EndDeq(w, deq, ok, s)
				}
			}(w)
		}
		wg.Wait()
		for _, p := range delayed {
			inject.Disarm(p)
		}
		err := lincheck.CheckShardedRelaxed(rec.History(), shards, func(v int64) int {
			return int(v/1000) % shards
		})
		if err != nil {
			t.Fatalf("round %d (seed %#x): %v", round, rseed, err)
		}
		for _, h := range handles {
			h.Close()
		}
	}
}
