// BenchmarkServiceRoundTrip measures the queue-as-a-service layer
// end to end: one produce→consume→ack cycle per iteration through the
// real HTTP surface (internal/service over an httptest listener), with
// the full admission pipeline — quota, breaker, per-connection in-flight
// cap — in the path. It is the service-level counterpart of
// BenchmarkAdapterOverhead: where that isolates the cost of the public
// adapter over a raw queue, this prices what the network front adds on
// top, so a regression in the handler or admission path shows up as a
// wall-clock delta rather than hiding behind queue noise.
//
// This benchmark once crashed any benchmark registered after it: a
// hardware watchpoint traced the crash to a one-word heap overflow in
// turnplus.New, where this image's go1.24.0 toolchain linked the
// hazard.WithActiveSet call site against the eras closure body (dupok
// generic-instantiation closures deduplicated by name across packages
// that numbered them differently). The overflow clobbered the testing
// matcher's func value, so the next b.Run jumped to a heap address.
// Fixed at the source — the reclaim packages' option constructors are
// go:noinline (see internal/hazard) — so the benchmark now runs in the
// core set's process like every other. Quotas are off so the benchmark
// prices the handler + queue path, not the token bucket refusing to
// run faster than its configured rate.
package turnqueue_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"turnqueue/internal/service"
)

func BenchmarkServiceRoundTrip(b *testing.B) {
	s, err := service.New(service.Config{
		Topics:     []string{"bench"},
		MaxThreads: 32,
		QuotaRate:  -1,
	})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Config.ConnContext = s.ConnContext
	ts.Start()
	defer ts.Close()
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := &service.Client{Base: ts.URL, Tenant: "bench", MaxAttempts: 1}
		payload := []byte("x")
		for pb.Next() {
			id, err := c.Produce(ctx, "bench", payload)
			if err != nil {
				b.Errorf("produce: %v", err)
				return
			}
			d, err := c.Consume(ctx, "bench")
			if err != nil {
				b.Errorf("consume: %v", err)
				return
			}
			if d == nil {
				// Another parallel body consumed our message; the cycle
				// still acked one message overall, skip.
				continue
			}
			if err := c.Ack(ctx, "bench", d.ID, d.Token); err != nil && err != service.ErrConflict {
				b.Errorf("ack id %d: %v", id, err)
				return
			}
		}
	})
	b.StopTimer()
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if _, err := s.Drain(dctx); err != nil {
		b.Fatalf("drain: %v", err)
	}
}
