// BenchmarkServiceRoundTrip measures the queue-as-a-service layer
// end to end: one produce→consume→ack cycle per iteration through the
// real HTTP surface (internal/service over an httptest listener), with
// the full admission pipeline — quota, breaker, per-connection in-flight
// cap — in the path. It is the service-level counterpart of
// BenchmarkAdapterOverhead: where that isolates the cost of the public
// adapter over a raw queue, this prices what the network front adds on
// top, so a regression in the handler or admission path shows up as a
// wall-clock delta rather than hiding behind queue noise.
//
// This benchmark once crashed any benchmark registered after it: a
// hardware watchpoint traced the crash to a one-word heap overflow in
// turnplus.New, where this image's go1.24.0 toolchain linked the
// hazard.WithActiveSet call site against the eras closure body (dupok
// generic-instantiation closures deduplicated by name across packages
// that numbered them differently). The overflow clobbered the testing
// matcher's func value, so the next b.Run jumped to a heap address.
// Fixed at the source — the reclaim packages' option constructors are
// go:noinline (see internal/hazard) — so the benchmark now runs in the
// core set's process like every other. Quotas are off so the benchmark
// prices the handler + queue path, not the token bucket refusing to
// run faster than its configured rate.
package turnqueue_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"turnqueue/internal/service"
)

func BenchmarkServiceRoundTrip(b *testing.B) {
	s, err := service.New(service.Config{
		Topics:     []string{"bench"},
		MaxThreads: 32,
		QuotaRate:  -1,
	})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Config.ConnContext = s.ConnContext
	ts.Start()
	defer ts.Close()
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := &service.Client{Base: ts.URL, Tenant: "bench", MaxAttempts: 1}
		payload := []byte("x")
		for pb.Next() {
			id, err := c.Produce(ctx, "bench", payload)
			if err != nil {
				b.Errorf("produce: %v", err)
				return
			}
			d, err := c.Consume(ctx, "bench")
			if err != nil {
				b.Errorf("consume: %v", err)
				return
			}
			if d == nil {
				// Another parallel body consumed our message; the cycle
				// still acked one message overall, skip.
				continue
			}
			if err := c.Ack(ctx, "bench", d.ID, d.Token); err != nil && err != service.ErrConflict {
				b.Errorf("ack id %d: %v", id, err)
				return
			}
		}
	})
	b.StopTimer()
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if _, err := s.Drain(dctx); err != nil {
		b.Fatalf("drain: %v", err)
	}
}

// BenchmarkServiceRoundTripBatch prices the batched hot path on one
// connection: each iteration moves k messages through one
// produce-batch, one consume-batch, and one ack-batch — three HTTP
// round trips and three admissions total, against single-op's 3k. The
// reported ns/op and allocs/op are per batch; ns/msg is reported
// explicitly, and scripts/bench.sh smoke divides allocs/op by k to
// gate the amortized per-message allocation count (<= 20) and the
// per-message latency (<= 0.2x the single-op round trip).
func BenchmarkServiceRoundTripBatch(b *testing.B) {
	for _, k := range []int{8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			s, err := service.New(service.Config{
				Topics:     []string{"bench"},
				MaxThreads: 32,
				QuotaRate:  -1,
			})
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			ts := httptest.NewUnstartedServer(s.Handler())
			ts.Config.ConnContext = s.ConnContext
			ts.Start()
			defer ts.Close()
			ctx := context.Background()
			c := &service.Client{Base: ts.URL, Tenant: "bench", MaxAttempts: 1}
			payloads := make([][]byte, k)
			for i := range payloads {
				payloads[i] = []byte("x")
			}
			acks := make([]service.AckEntry, 0, k)

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids, err := c.ProduceBatch(ctx, "bench", payloads)
				if err != nil || len(ids) != k {
					b.Fatalf("produce-batch: %d ids, err %v", len(ids), err)
				}
				// The sharded front may spread the batch, so drain until all
				// k are back; steady state is one consume round trip.
				for got := 0; got < k; {
					ds, err := c.ConsumeBatch(ctx, "bench", k-got, 0)
					if err != nil || len(ds) == 0 {
						b.Fatalf("consume-batch: %d deliveries, err %v", len(ds), err)
					}
					got += len(ds)
					acks = acks[:0]
					for _, d := range ds {
						acks = append(acks, service.AckEntry{ID: d.ID, Token: d.Token})
					}
					res, err := c.AckBatch(ctx, "bench", acks)
					if err != nil {
						b.Fatalf("ack-batch: %v", err)
					}
					for j, r := range res {
						if r != service.AckOK {
							b.Fatalf("ack %d: %v", j, r)
						}
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/msg")
			dctx, cancel := context.WithCancel(ctx)
			defer cancel()
			if _, err := s.Drain(dctx); err != nil {
				b.Fatalf("drain: %v", err)
			}
		})
	}
}
